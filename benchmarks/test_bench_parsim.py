"""Parallel-kernel benchmarks: the 1024-node NOW cell, sequential vs 4 LPs.

The partitioned kernel (:mod:`repro.des.parallel`) exists so one big
cell can use several cores; this benchmark measures that promise on the
flagship cell from the scale sweep — 1024 NOW nodes on a contention-free
(switched-Ethernet) network, one simulated second.

Two probes run in their own subprocesses (clean interpreter, no shared
warm state): the sequential kernel and the same cell under
``lp_workers=4``.  Equivalence is asserted on ``samples_received``
(an integer, bit-identical by the determinism contract); the speedup
assertion is hardware-gated:

* with >= 6 CPUs (4 LP workers + coordinator + slack) the 4-LP run must
  be at least 3x faster than sequential;
* on smaller hosts — including the single-core container the committed
  baseline was generated on, where true speedup is unmeasurable — the
  run instead bounds the *coordination overhead*: 4 LPs time-slicing
  one core must stay within 2x of sequential.

Committed baseline: ``BENCH_PARSIM.json``, gated in CI by
``scripts/check_bench_regression.py --mode relative`` (the
parallel/sequential wall-time ratio, so runner speed cancels out; the
baseline's meta section records the single-core provenance).  Set
``REPRO_PARSIM_RESULTS=<path>`` to emit the results for that gate::

    PYTHONPATH=src REPRO_PARSIM_RESULTS=parsim_results.json \
        python -m pytest benchmarks/test_bench_parsim.py -q
    python scripts/check_bench_regression.py parsim_results.json \
        --baseline BENCH_PARSIM.json --mode relative
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

NODES = 1024
DURATION = 1_000_000.0  # one simulated second
SEED = 1
LP_WORKERS = 4

_SRC = Path(__file__).resolve().parent.parent / "src"

# argv: nodes duration seed lp_workers (0 = sequential kernel).
_PROBE = r"""
import json, sys, time
from repro.rocc.config import Architecture, NetworkMode, SimulationConfig
from repro.rocc.system import simulate

nodes, duration = int(sys.argv[1]), float(sys.argv[2])
seed, lp = int(sys.argv[3]), int(sys.argv[4])
cfg = SimulationConfig(
    architecture=Architecture.NOW, nodes=nodes, duration=duration,
    network_mode=NetworkMode.CONTENTION_FREE, seed=seed,
)
t0 = time.perf_counter()
results = simulate(cfg, lp_workers=lp if lp >= 2 else None)
wall = time.perf_counter() - t0
print(json.dumps({
    "lp_workers": lp,
    "wall_seconds": wall,
    "samples_received": results.samples_received,
    "samples_generated": results.samples_generated,
    "lp_windows": results.observability.get("lp_windows", 0),
}))
"""


def _run_probe(lp_workers: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.setdefault("PYTHONHASHSEED", "0")
    env.pop("REPRO_DES_PARALLEL", None)  # the probe's argv decides
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE,
         str(NODES), str(DURATION), str(SEED), str(lp_workers)],
        capture_output=True, text=True, env=env, timeout=600,
    )
    assert proc.returncode == 0, (
        f"parsim probe (lp={lp_workers}) failed:\n{proc.stderr}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def parsim_probes():
    """Sequential and 4-LP subprocess runs, shared by every test below."""
    probes = {0: _run_probe(0), LP_WORKERS: _run_probe(LP_WORKERS)}
    out = os.environ.get("REPRO_PARSIM_RESULTS")
    if out:
        payload = {"benchmarks": [
            {"name": f"parsim_now_{NODES}n_seq",
             "stats": {"min": probes[0]["wall_seconds"]}},
            {"name": f"parsim_now_{NODES}n_lp{LP_WORKERS}",
             "stats": {"min": probes[LP_WORKERS]["wall_seconds"]}},
        ]}
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")
    return probes


def test_parsim_results_match(parsim_probes):
    """The 4-LP run reproduces the sequential cell's sample counts."""
    seq, par = parsim_probes[0], parsim_probes[LP_WORKERS]
    assert seq["samples_received"] > 0
    assert par["samples_received"] == seq["samples_received"]
    assert par["samples_generated"] == seq["samples_generated"]
    assert par["lp_windows"] > 0
    assert seq["lp_windows"] == 0


def test_parsim_speedup(parsim_probes):
    """>= 3x at 4 LPs on real multicore; overhead-bounded elsewhere."""
    seq = parsim_probes[0]["wall_seconds"]
    par = parsim_probes[LP_WORKERS]["wall_seconds"]
    cpus = os.cpu_count() or 1
    if cpus >= 6:
        speedup = seq / par
        assert speedup >= 3.0, (
            f"4-LP speedup {speedup:.2f}x < 3x on a {cpus}-CPU host "
            f"(seq {seq:.2f}s, parallel {par:.2f}s)"
        )
    else:
        # Time-slicing one core cannot go faster; the gate is that the
        # conservative-window machinery stays cheap (measured 1.27x on
        # the single-core reference container).
        assert par <= seq * 2.0, (
            f"parallel overhead {par / seq:.2f}x > 2x on a {cpus}-CPU "
            f"host (seq {seq:.2f}s, parallel {par:.2f}s)"
        )
