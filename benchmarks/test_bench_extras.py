"""Benchmarks for the extension artifacts (adaptive, perturbation,
cross-validation) — every registered experiment has a bench target."""

from repro.experiments import run


def test_extra_adaptive(run_once):
    fig = run_once(run, "extra_adaptive", quick=True)
    table = fig.find("static vs regulated")
    settled = table.column("settled_overhead_pct")
    assert settled[0] > 15.0 and settled[1] < 1.5 and settled[2] < 1.5


def test_extra_perturbation(run_once):
    table = run_once(run, "extra_perturbation", quick=True)
    slowdowns = table.column("slowdown_pct")
    assert max(slowdowns) > 30.0
    assert min(slowdowns) < 2.0


def test_extra_crossvalidation(run_once):
    table = run_once(run, "extra_crossvalidation", quick=True)
    for err in table.column("util_error_pct"):
        assert err < 8.0
