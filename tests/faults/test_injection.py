"""Integration tests: fault injection against the full ROCC model."""

import math

import pytest

from repro.faults import (
    CpuSlowdown,
    DaemonCrash,
    FaultPlan,
    NetworkFault,
    PipeStall,
    RecoveryPolicy,
)
from repro.rocc import (
    Architecture,
    ForwardingTopology,
    ParadynISSystem,
    SimulationConfig,
    simulate,
    simulate_aggregated,
)


def _cfg(**kw):
    base = dict(
        nodes=2,
        duration=3_000_000.0,
        sampling_period=20_000.0,
        include_pvmd=False,
        include_other=False,
        seed=11,
    )
    base.update(kw)
    return SimulationConfig(**base)


# ----------------------------------------------------------------------
# Determinism (acceptance criterion)
# ----------------------------------------------------------------------
def test_fault_runs_are_deterministic():
    plan = FaultPlan(
        (
            DaemonCrash(node=0, at=800_000.0, restart_after=300_000.0),
            NetworkFault(loss_probability=0.1),
        )
    )
    cfg = _cfg(faults=plan, recovery=RecoveryPolicy(max_retries=2))
    a, b = simulate(cfg), simulate(cfg)
    assert a.samples_dropped == b.samples_dropped
    assert a.drops_by_reason == b.drops_by_reason
    assert a.retransmissions == b.retransmissions
    assert a.messages_lost == b.messages_lost
    assert a.samples_received == b.samples_received
    assert a.daemon_downtime == b.daemon_downtime


def test_fault_streams_do_not_perturb_workload():
    """Adding faults must not change the generated workload (common
    random numbers: faults draw from dedicated substreams)."""
    clean = simulate(_cfg())
    faulty = simulate(_cfg(faults=FaultPlan.lossy_network(0.05)))
    assert clean.samples_generated == faulty.samples_generated


# ----------------------------------------------------------------------
# Daemon crash / restart
# ----------------------------------------------------------------------
def test_crash_restart_metrics():
    plan = FaultPlan((DaemonCrash(node=0, at=1_000_000.0, restart_after=400_000.0),))
    res = simulate(_cfg(faults=plan, recovery=RecoveryPolicy()))
    assert res.daemon_crashes == 1
    assert res.daemon_downtime == pytest.approx(400_000.0)
    # Crash → first successful forward after restart happened, so the
    # recovery latency is finite and at least the downtime.
    assert not math.isnan(res.recovery_latency)
    assert res.recovery_latency >= 400_000.0
    # Something was lost in the crash, and it is accounted.
    assert res.drops_by_reason.get("crash", 0) >= 0
    assert res.samples_received + res.samples_dropped <= res.samples_generated


def test_permanent_crash_counts_downtime_to_end():
    plan = FaultPlan((DaemonCrash(node=0, at=1_000_000.0, restart_after=None),))
    system = ParadynISSystem(_cfg(faults=plan))
    res = system.run()
    assert system.daemons[0].down
    assert res.daemon_downtime == pytest.approx(2_000_000.0)
    assert math.isnan(res.recovery_latency)
    # The surviving node keeps delivering.
    assert res.samples_received > 0


def test_samples_in_pipe_survive_crash():
    """The kernel pipe outlives the daemon process: samples written
    during the outage are delivered after the restart."""
    plan = FaultPlan((DaemonCrash(node=0, at=1_000_000.0, restart_after=500_000.0),))
    res = simulate(_cfg(nodes=1, faults=plan, recovery=RecoveryPolicy()))
    # Sampling continues at 20 ms throughout; if pipe contents died with
    # the daemon the delivered count would be ~25 short.
    lost = res.samples_generated - res.samples_received
    assert lost <= 8  # crash loses at most the in-flight batch + tail


def test_crash_validation_against_system_size():
    plan = FaultPlan((DaemonCrash(node=9, at=1.0),))
    with pytest.raises(ValueError):
        ParadynISSystem(_cfg(faults=plan))


# ----------------------------------------------------------------------
# Network loss and recovery policies
# ----------------------------------------------------------------------
def test_drop_only_policy_accounts_losses():
    cfg = _cfg(
        faults=FaultPlan.lossy_network(0.15),
        recovery=RecoveryPolicy.drop_only(),
        seed=3,
    )
    res = simulate(cfg)
    assert res.messages_lost > 0
    assert res.retransmissions == 0
    assert res.drops_by_reason.get("loss", 0) == res.samples_dropped
    assert res.samples_dropped > 0
    assert res.samples_received + res.samples_dropped <= res.samples_generated


def test_retries_recover_lost_messages():
    lossy = FaultPlan.lossy_network(0.15)
    dropped = simulate(
        _cfg(faults=lossy, recovery=RecoveryPolicy.drop_only(), seed=3)
    )
    retried = simulate(
        _cfg(faults=lossy, recovery=RecoveryPolicy(max_retries=4), seed=3)
    )
    assert retried.retransmissions > 0
    assert retried.samples_received > dropped.samples_received
    assert retried.samples_dropped < dropped.samples_dropped


def test_no_policy_defaults_to_drop_with_accounting():
    res = simulate(_cfg(faults=FaultPlan.lossy_network(0.2), seed=5))
    assert res.messages_lost > 0
    assert res.retransmissions == 0
    assert res.drops_by_reason.get("loss", 0) > 0


def test_corruption_is_discarded_at_receiver():
    cfg = _cfg(
        faults=FaultPlan.lossy_network(0.0, corruption_probability=0.2),
        seed=9,
    )
    res = simulate(cfg)
    assert res.messages_corrupted > 0
    assert res.drops_by_reason.get("corrupt", 0) > 0
    # Corrupted samples never count as received.
    assert res.samples_received + res.samples_dropped <= res.samples_generated


def test_forward_timeout_fires_and_is_counted():
    policy = RecoveryPolicy(max_retries=1, forward_timeout=1.0, backoff_base=100.0)
    res = simulate(_cfg(faults=FaultPlan.lossy_network(0.0), recovery=policy))
    # A 1 µs budget is shorter than any transfer: every send times out.
    assert res.forward_timeouts > 0
    assert res.drops_by_reason.get("loss", 0) > 0


def test_resend_queue_overflow_drops():
    # Everything is lost and retried slowly: the bounded queue overflows.
    policy = RecoveryPolicy(
        max_retries=10, backoff_base=500_000.0, resend_queue_limit=1
    )
    res = simulate(_cfg(faults=FaultPlan.lossy_network(0.9), recovery=policy, seed=2))
    assert res.drops_by_reason.get("overflow", 0) > 0


# ----------------------------------------------------------------------
# Pipe stall and CPU slowdown
# ----------------------------------------------------------------------
def test_pipe_stall_delays_but_preserves_samples():
    plan = FaultPlan((PipeStall(node=0, at=1_000_000.0, duration=500_000.0),))
    system = ParadynISSystem(_cfg(nodes=1, faults=plan))
    res = system.run()
    pipe = system.pipes[0]
    assert pipe.stalls == 1
    assert pipe.stalled_time == pytest.approx(500_000.0)
    # Stalls delay, they do not drop.
    assert res.samples_dropped == 0
    assert res.samples_received >= res.samples_generated - 5


def test_cpu_slowdown_applies_and_restores():
    plan = FaultPlan(
        (CpuSlowdown(node=0, at=500_000.0, duration=1_000_000.0, factor=4.0),)
    )
    system = ParadynISSystem(_cfg(nodes=1, faults=plan))
    res = system.run()
    assert system.worker_cpus[0].speed == pytest.approx(1.0)  # restored
    assert system.injector.injected.get("CpuSlowdown") == 1
    slow_busy = res.app_cpu_time_per_node
    baseline = simulate(_cfg(nodes=1)).app_cpu_time_per_node
    assert slow_busy > baseline  # stretched service times show up


# ----------------------------------------------------------------------
# Tree forwarding reroute
# ----------------------------------------------------------------------
def _tree_cfg(**kw):
    return _cfg(
        architecture=Architecture.MPP,
        forwarding=ForwardingTopology.TREE,
        nodes=7,
        **kw,
    )


def test_reroute_around_crashed_interior_daemon():
    # Node 1 relays nodes 3 and 4; kill it permanently.
    plan = FaultPlan((DaemonCrash(node=1, at=500_000.0, restart_after=None),))
    stuck = simulate(_tree_cfg(faults=plan, recovery=RecoveryPolicy()))
    rerouted = simulate(
        _tree_cfg(
            faults=plan,
            recovery=RecoveryPolicy(reroute_around_down_daemons=True),
        )
    )
    # Without rerouting the subtree's batches pile up in the dead inbox.
    assert rerouted.samples_received > stuck.samples_received


def test_reroute_falls_back_to_main_when_path_dead():
    # Kill node 2 (parent of 5, 6) and the root daemon 0: node 5's
    # only live destination is the main process itself.
    plan = FaultPlan(
        (
            DaemonCrash(node=0, at=400_000.0, restart_after=None),
            DaemonCrash(node=2, at=400_000.0, restart_after=None),
        )
    )
    res = simulate(
        _tree_cfg(
            faults=plan,
            recovery=RecoveryPolicy(reroute_around_down_daemons=True),
        )
    )
    assert res.samples_received > 0


# ----------------------------------------------------------------------
# Guards
# ----------------------------------------------------------------------
def test_aggregated_mode_rejects_faults():
    cfg = _cfg(
        architecture=Architecture.MPP,
        faults=FaultPlan.lossy_network(0.1),
    )
    with pytest.raises(ValueError, match="full simulation"):
        simulate_aggregated(cfg)


def test_config_coerces_fault_specs():
    cfg = _cfg(faults=DaemonCrash(node=0, at=1.0))
    assert isinstance(cfg.faults, FaultPlan)
    cfg2 = _cfg(faults=[DaemonCrash(node=0, at=1.0)])
    assert len(cfg2.faults) == 1


def test_config_rejects_bad_recovery():
    with pytest.raises(TypeError):
        _cfg(recovery="retry please")
