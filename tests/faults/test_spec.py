"""Validation tests for fault specifications, plans, and policies."""

import math

import pytest

from repro.faults import (
    CpuSlowdown,
    DaemonCrash,
    FaultPlan,
    MessageLost,
    NetworkFault,
    PipeStall,
    RecoveryPolicy,
)


# ----------------------------------------------------------------------
# Individual specs
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kw",
    [
        {"node": -1, "at": 0.0},
        {"node": 0, "at": -1.0},
        {"node": 0, "at": 0.0, "restart_after": 0.0},
        {"node": 0, "at": 0.0, "restart_after": -5.0},
    ],
)
def test_daemon_crash_rejects(kw):
    with pytest.raises(ValueError):
        DaemonCrash(**kw)


def test_daemon_crash_permanent():
    spec = DaemonCrash(node=0, at=1.0, restart_after=None)
    assert spec.restart_after is None


@pytest.mark.parametrize(
    "kw",
    [
        {"loss_probability": -0.1},
        {"loss_probability": 1.1},
        {"corruption_probability": 2.0},
        {"loss_probability": 0.6, "corruption_probability": 0.6},
        {"start": -1.0},
        {"start": 5.0, "stop": 5.0},
        {"start": 5.0, "stop": 1.0},
    ],
)
def test_network_fault_rejects(kw):
    with pytest.raises(ValueError):
        NetworkFault(**kw)


def test_network_fault_defaults_whole_run():
    f = NetworkFault(loss_probability=0.1)
    assert f.start == 0.0 and f.stop == math.inf


@pytest.mark.parametrize(
    "kw",
    [
        {"node": -1, "at": 0.0, "duration": 1.0},
        {"node": 0, "at": -1.0, "duration": 1.0},
        {"node": 0, "at": 0.0, "duration": 0.0},
    ],
)
def test_pipe_stall_rejects(kw):
    with pytest.raises(ValueError):
        PipeStall(**kw)


@pytest.mark.parametrize(
    "kw",
    [
        {"node": 0, "at": 0.0, "duration": 0.0},
        {"node": 0, "at": 0.0, "duration": 1.0, "factor": 0.0},
        {"node": -2, "at": 0.0, "duration": 1.0},
    ],
)
def test_cpu_slowdown_rejects(kw):
    with pytest.raises(ValueError):
        CpuSlowdown(**kw)


def test_message_lost_carries_payload():
    exc = MessageLost("the batch")
    assert exc.payload == "the batch"


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
def test_plan_rejects_non_specs():
    with pytest.raises(TypeError):
        FaultPlan(("not a fault",))


def test_plan_coerce_forms():
    single = DaemonCrash(node=0, at=1.0)
    assert len(FaultPlan.coerce(single)) == 1
    assert len(FaultPlan.coerce([single, NetworkFault(loss_probability=0.1)])) == 2
    plan = FaultPlan((single,))
    assert FaultPlan.coerce(plan) is plan


def test_plan_partitions_by_kind():
    plan = FaultPlan(
        (
            DaemonCrash(node=1, at=5.0),
            NetworkFault(loss_probability=0.2),
            PipeStall(node=0, at=1.0, duration=2.0),
            CpuSlowdown(node=2, at=1.0, duration=2.0),
        )
    )
    assert len(plan.crashes) == 1
    assert len(plan.network_faults) == 1
    assert len(plan.pipe_stalls) == 1
    assert len(plan.cpu_slowdowns) == 1
    assert plan.max_node() == 2


def test_daemon_churn_round_robins():
    plan = FaultPlan.daemon_churn(
        nodes=[0, 1], first_at=100.0, period=1000.0, downtime=200.0, until=3500.0
    )
    crashes = plan.crashes
    assert [c.node for c in crashes] == [0, 1, 0, 1]
    assert [c.at for c in crashes] == [100.0, 1100.0, 2100.0, 3100.0]
    assert all(c.restart_after == 200.0 for c in crashes)


def test_daemon_churn_validates():
    with pytest.raises(ValueError):
        FaultPlan.daemon_churn(nodes=[0], first_at=0, period=100, downtime=100, until=500)
    with pytest.raises(ValueError):
        FaultPlan.daemon_churn(nodes=[], first_at=0, period=100, downtime=10, until=500)


def test_lossy_network_helper():
    plan = FaultPlan.lossy_network(0.05, corruption_probability=0.01)
    (f,) = plan.network_faults
    assert f.loss_probability == 0.05 and f.corruption_probability == 0.01


# ----------------------------------------------------------------------
# RecoveryPolicy
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kw",
    [
        {"max_retries": -1},
        {"backoff_base": 0.0},
        {"backoff_factor": 0.5},
        {"backoff_jitter": 1.0},
        {"backoff_jitter": -0.1},
        {"forward_timeout": 0.0},
        {"resend_queue_limit": 0},
    ],
)
def test_policy_rejects(kw):
    with pytest.raises(ValueError):
        RecoveryPolicy(**kw)


def test_backoff_is_exponential_without_jitter():
    policy = RecoveryPolicy(backoff_base=100.0, backoff_factor=3.0, backoff_jitter=0.0)
    assert policy.backoff_delay(1, None) == 100.0
    assert policy.backoff_delay(2, None) == 300.0
    assert policy.backoff_delay(3, None) == 900.0
    with pytest.raises(ValueError):
        policy.backoff_delay(0, None)


def test_backoff_jitter_stays_in_band():
    import numpy as np

    policy = RecoveryPolicy(backoff_base=100.0, backoff_factor=1.0, backoff_jitter=0.5)
    rng = np.random.default_rng(0)
    delays = [policy.backoff_delay(1, rng) for _ in range(200)]
    assert all(50.0 <= d <= 150.0 for d in delays)
    assert max(delays) > 110.0 and min(delays) < 90.0  # jitter actually applied


def test_policy_presets():
    assert RecoveryPolicy.drop_only().max_retries == 0
    aggressive = RecoveryPolicy.aggressive()
    assert aggressive.forward_timeout is not None
    assert aggressive.reroute_around_down_daemons
