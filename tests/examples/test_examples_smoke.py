"""End-to-end smoke tests: every ``examples/*.py`` must run clean.

Each example runs as a subprocess (the way a reader would run it) in
quick mode (``REPRO_EXAMPLE_QUICK=1`` shrinks the simulated time) and
must exit 0 with non-trivial stdout.  The examples broke silently
before they were covered here.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_are_discovered() -> None:
    """The glob must keep finding the examples (guards against renames)."""
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name: str) -> None:
    env = dict(os.environ)
    env["REPRO_EXAMPLE_QUICK"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        env=env,
        cwd=EXAMPLES_DIR,
        timeout=240,
    )
    assert proc.returncode == 0, (
        f"{name} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )
    assert len(proc.stdout.strip()) > 40, (
        f"{name} printed almost nothing:\n{proc.stdout!r}"
    )
