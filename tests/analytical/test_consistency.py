"""Cross-model consistency checks between the analytical variants.

These pin down relationships the three §3 models must satisfy among
themselves — useful regression armor independent of the simulator.
"""

import pytest

from repro.analytical import (
    ISDemands,
    MPPAnalyticalModel,
    NOWAnalyticalModel,
    SMPAnalyticalModel,
)


def test_smp_with_one_cpu_one_daemon_matches_now_pd_utilization():
    """An SMP with n=1 CPU and k=1 daemon serving one app process is the
    single NOW node for the daemon's CPU utilization."""
    now = NOWAnalyticalModel(nodes=1, sampling_period=40_000.0, batch_size=1)
    smp = SMPAnalyticalModel(
        nodes=1, sampling_period=40_000.0, batch_size=1,
        app_processes=1, daemons=1,
    )
    assert smp.pd_cpu_utilization() == pytest.approx(now.pd_cpu_utilization())


def test_mpp_direct_equals_now_for_all_metrics():
    for batch in (1, 16, 128):
        for nodes in (2, 64):
            now = NOWAnalyticalModel(
                nodes=nodes, sampling_period=10_000.0, batch_size=batch
            )
            mpp = MPPAnalyticalModel(
                nodes=nodes, sampling_period=10_000.0, batch_size=batch,
                tree=False,
            )
            assert mpp.pd_cpu_utilization() == now.pd_cpu_utilization()
            assert mpp.pd_network_utilization() == now.pd_network_utilization()
            assert mpp.app_cpu_utilization() == now.app_cpu_utilization()


def test_utilizations_scale_linearly_in_arrival_rate():
    """Doubling the per-node rate (half the period) doubles every open
    utilization — linearity of the utilization law."""
    slow = NOWAnalyticalModel(nodes=8, sampling_period=40_000.0)
    fast = NOWAnalyticalModel(nodes=8, sampling_period=20_000.0)
    assert fast.pd_cpu_utilization() == pytest.approx(
        2 * slow.pd_cpu_utilization()
    )
    assert fast.paradyn_cpu_utilization() == pytest.approx(
        2 * slow.paradyn_cpu_utilization()
    )


def test_batching_and_rate_are_interchangeable():
    """λ depends on T·b only: (T, b) and (T/2, 2b) give equal rates."""
    a = NOWAnalyticalModel(nodes=4, sampling_period=40_000.0, batch_size=4)
    b = NOWAnalyticalModel(nodes=4, sampling_period=20_000.0, batch_size=8)
    assert a.arrival_rate == pytest.approx(b.arrival_rate)
    assert a.pd_cpu_utilization() == pytest.approx(b.pd_cpu_utilization())


def test_tree_reduces_to_direct_when_merge_is_free():
    free_merge = ISDemands(
        d_pd_cpu=267.0, d_pd_network=71.0, d_main_cpu=3208.0, d_pdm_cpu=1e-12
    )
    tree = MPPAnalyticalModel(nodes=64, tree=True, demands=free_merge)
    direct = MPPAnalyticalModel(nodes=64, tree=False, demands=free_merge)
    assert tree.pd_cpu_utilization() == pytest.approx(
        direct.pd_cpu_utilization(), rel=1e-6
    )


def test_smp_latency_approaches_now_like_shape_at_one_cpu():
    """With one CPU the SMP's CPU residence term equals the NOW's."""
    smp = SMPAnalyticalModel(
        nodes=1, sampling_period=40_000.0, app_processes=1, daemons=1
    )
    now = NOWAnalyticalModel(nodes=1, sampling_period=40_000.0)
    # Bus and network demands coincide (both 71 µs), so R matches when
    # network utilizations do; with n=1 they differ only via eq (3)'s n
    # factor, which is 1 here.
    assert smp.monitoring_latency() == pytest.approx(
        now.monitoring_latency(), rel=1e-9
    )


def test_mpp_tree_main_load_independent_of_node_count():
    """Equation (14): the main process sees 2λ regardless of n (the tree
    collapses everything through the root)."""
    small = MPPAnalyticalModel(nodes=8, tree=True)
    large = MPPAnalyticalModel(nodes=512, tree=True)
    assert small.paradyn_cpu_utilization() == pytest.approx(
        large.paradyn_cpu_utilization()
    )


def test_direct_main_load_grows_with_node_count():
    """Equation (5): direct forwarding multiplies the main load by n."""
    small = MPPAnalyticalModel(nodes=8, tree=False)
    large = MPPAnalyticalModel(nodes=512, tree=False)
    assert large.paradyn_cpu_utilization() == pytest.approx(
        64 * small.paradyn_cpu_utilization()
    )
