"""Tests for the MPP analytical model (equations 13–16)."""

import pytest

from repro.analytical import ISDemands, MPPAnalyticalModel, NOWAnalyticalModel


def model(**kw):
    base = dict(nodes=256, sampling_period=40_000.0, batch_size=1,
                app_processes_per_node=1, tree=False)
    base.update(kw)
    return MPPAnalyticalModel(**base)


def test_direct_matches_now_equations():
    mpp = model(tree=False)
    now = NOWAnalyticalModel(nodes=256, sampling_period=40_000.0, batch_size=1)
    assert mpp.pd_cpu_utilization() == now.pd_cpu_utilization()
    assert mpp.monitoring_latency() == now.monitoring_latency()
    assert mpp.paradyn_cpu_utilization() == now.paradyn_cpu_utilization()


def test_tree_pd_utilization_equation_13():
    m = model(tree=True, nodes=8)
    lam = m.arrival_rate
    d_pd = d_pdm = 267.0
    leaves = 4 * lam * d_pd
    two_children = 3 * (lam * d_pd + 2 * lam * d_pdm)
    one_child = lam * d_pdm + lam * d_pd
    expected = (leaves + two_children + one_child) / 8
    assert m.pd_cpu_utilization() == pytest.approx(expected)


def test_tree_overhead_exceeds_direct():
    assert model(tree=True).pd_cpu_utilization() > model(
        tree=False
    ).pd_cpu_utilization()


def test_tree_pd_utilization_approaches_twice_direct():
    """For large n, average merge arrivals -> λ per node, so tree CPU
    utilization -> λ(D_pd + D_pdm) ≈ 2x direct when D_pdm = D_pd."""
    direct = model(tree=False, nodes=1024).pd_cpu_utilization()
    tree = model(tree=True, nodes=1024).pd_cpu_utilization()
    assert tree == pytest.approx(2 * direct, rel=0.01)


def test_equation_14_main_utilization():
    m = model(tree=True)
    assert m.paradyn_cpu_utilization() == pytest.approx(
        2 * m.arrival_rate * 3208.0
    )


def test_equation_15_network_scales_like_cpu_structure():
    m = model(tree=True, nodes=8)
    lam = m.arrival_rate
    d = 71.0
    expected = (4 * lam * d + 3 * (lam * d + 2 * lam * d) + 2 * lam * d) / 8
    assert m.pd_network_utilization() == pytest.approx(expected)


def test_equation_16_latency_includes_merge_demand():
    m = model(tree=True)
    direct = model(tree=False)
    assert m.monitoring_latency() > direct.monitoring_latency()


def test_single_node_tree_degenerates():
    m = model(tree=True, nodes=1)
    assert m.pd_cpu_utilization() == pytest.approx(
        m.arrival_rate * 267.0
    )


def test_batching_reduces_tree_overhead_too():
    cf = model(tree=True, batch_size=1)
    bf = model(tree=True, batch_size=32)
    assert bf.pd_cpu_utilization() == pytest.approx(
        cf.pd_cpu_utilization() / 32
    )


def test_custom_merge_demand():
    cheap_merge = ISDemands(
        d_pd_cpu=267.0, d_pd_network=71.0, d_main_cpu=3208.0, d_pdm_cpu=10.0
    )
    m = model(tree=True, demands=cheap_merge)
    assert m.pd_cpu_utilization() < model(tree=True).pd_cpu_utilization()


def test_app_utilization_complement():
    m = model(tree=True)
    assert m.app_cpu_utilization() == pytest.approx(
        1 - m.pd_cpu_utilization()
    )


def test_validation():
    with pytest.raises(ValueError):
        model(nodes=0)
