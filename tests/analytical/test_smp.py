"""Tests for the SMP analytical model (equations 7–12)."""

import pytest

from repro.analytical import SMPAnalyticalModel


def model(**kw):
    base = dict(nodes=16, sampling_period=40_000.0, batch_size=1,
                app_processes=32, daemons=1)
    base.update(kw)
    return SMPAnalyticalModel(**base)


def test_arrival_rate_includes_daemon_factor():
    assert model(daemons=2).arrival_rate == pytest.approx(
        2 * model(daemons=1).arrival_rate
    )
    assert model().arrival_rate == pytest.approx(32 / 40_000.0)


def test_equation_7_divides_by_cpus():
    m = model()
    expected = (32 / 40_000.0) * 267.0 / 16
    assert m.pd_cpu_utilization() == pytest.approx(expected)


def test_equation_8():
    m = model()
    expected = (32 / 40_000.0) * 3208.0 / 16
    assert m.paradyn_cpu_utilization() == pytest.approx(expected)


def test_equation_9_weighted_average():
    m = model(daemons=3)
    k = 3
    expected = (
        k * m.pd_cpu_utilization() + m.paradyn_cpu_utilization()
    ) / (k + 1)
    assert m.is_cpu_utilization() == pytest.approx(expected)


def test_equation_10():
    m = model()
    assert m.app_cpu_utilization() == pytest.approx(1 - m.is_cpu_utilization())


def test_equation_11_bus():
    m = model()
    assert m.bus_utilization() == pytest.approx((32 / 40_000.0) * 71.0)


def test_equation_12_latency_components():
    m = model()
    cpu_term = (267.0 / 16) / (1 - m.pd_cpu_utilization())
    bus_term = 71.0 / (1 - m.bus_utilization())
    assert m.monitoring_latency() == pytest.approx(cpu_term + bus_term)


def test_bus_demand_defaults_to_network_demand():
    m = model()
    assert m.d_pd_bus == 71.0
    m2 = model(d_pd_bus=150.0)
    assert m2.bus_utilization() == pytest.approx((32 / 40_000.0) * 150.0)


def test_bf_lowers_is_utilization():
    assert model(batch_size=32).is_cpu_utilization() < model().is_cpu_utilization()


def test_more_cpus_dilute_is_utilization():
    assert model(nodes=32).is_cpu_utilization() < model(nodes=8).is_cpu_utilization()


def test_validation():
    with pytest.raises(ValueError):
        model(nodes=0)
    with pytest.raises(ValueError):
        model(daemons=0)
    with pytest.raises(ValueError):
        model(batch_size=0)
