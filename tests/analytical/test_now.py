"""Tests for the NOW analytical model (equations 1–6)."""

import math

import pytest

from repro.analytical import ISDemands, NOWAnalyticalModel


def model(**kw):
    base = dict(nodes=8, sampling_period=40_000.0, batch_size=1,
                app_processes_per_node=1)
    base.update(kw)
    return NOWAnalyticalModel(**base)


def test_arrival_rate_equation_1():
    m = model(sampling_period=40_000.0, batch_size=1, app_processes_per_node=1)
    assert m.arrival_rate == pytest.approx(1 / 40_000.0)
    m2 = model(batch_size=32, app_processes_per_node=4)
    assert m2.arrival_rate == pytest.approx(4 / (40_000.0 * 32))


def test_pd_cpu_utilization_equation_2():
    m = model()
    assert m.pd_cpu_utilization() == pytest.approx(267.0 / 40_000.0)


def test_network_utilization_equation_3_scales_with_nodes():
    assert model(nodes=16).pd_network_utilization() == pytest.approx(
        2 * model(nodes=8).pd_network_utilization()
    )


def test_latency_equation_4_matches_figure9_scale():
    """Figure 9 shows ~3.4e-4 s at T = 40 ms."""
    m = model()
    assert m.monitoring_latency() == pytest.approx(340.0, rel=0.02)


def test_paradyn_utilization_equation_5():
    m = model()
    assert m.paradyn_cpu_utilization() == pytest.approx(
        8 * (1 / 40_000.0) * 3208.0
    )


def test_app_utilization_equation_6():
    m = model()
    assert m.app_cpu_utilization() == pytest.approx(1 - 267.0 / 40_000.0)


def test_bf_reduces_utilizations_by_batch_factor():
    cf, bf = model(batch_size=1), model(batch_size=32)
    assert bf.pd_cpu_utilization() == pytest.approx(
        cf.pd_cpu_utilization() / 32
    )
    assert bf.paradyn_cpu_utilization() == pytest.approx(
        cf.paradyn_cpu_utilization() / 32
    )


def test_latency_grows_toward_saturation():
    # Tiny period + many nodes saturates the shared network.
    m = model(nodes=32, sampling_period=1_000.0)
    assert m.pd_network_utilization() > 1.0
    assert math.isinf(m.monitoring_latency())


def test_validation():
    with pytest.raises(ValueError):
        model(nodes=0)
    with pytest.raises(ValueError):
        model(sampling_period=0)
    with pytest.raises(ValueError):
        model(batch_size=0)
    with pytest.raises(ValueError):
        model(app_processes_per_node=0)


def test_custom_demands():
    d = ISDemands(d_pd_cpu=500.0, d_pd_network=100.0, d_main_cpu=1000.0,
                  d_pdm_cpu=500.0)
    m = model(demands=d)
    assert m.pd_cpu_utilization() == pytest.approx(500.0 / 40_000.0)


def test_shorter_period_raises_overhead_monotonically():
    utils = [
        model(sampling_period=t).pd_cpu_utilization()
        for t in (64_000.0, 32_000.0, 16_000.0, 8_000.0)
    ]
    assert utils == sorted(utils)
