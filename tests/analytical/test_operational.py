"""Tests for the operational laws and demand constructions."""

import math

import pytest

from repro.analytical import (
    ISDemands,
    forced_flow_law,
    littles_law_population,
    littles_law_response,
    residence_time_open,
    utilization_law,
)
from repro.rocc import DaemonCostModel, MainCostModel


def test_utilization_law():
    assert utilization_law(0.5, 2.0) == 1.0
    assert utilization_law(0.0, 100.0) == 0.0
    with pytest.raises(ValueError):
        utilization_law(-1, 1)


def test_forced_flow_law():
    assert forced_flow_law(10.0, 3.0) == 30.0
    with pytest.raises(ValueError):
        forced_flow_law(1.0, -1.0)


def test_littles_law():
    assert littles_law_population(2.0, 5.0) == 10.0
    assert littles_law_response(10.0, 2.0) == 5.0
    assert math.isinf(littles_law_response(10.0, 0.0))


def test_residence_time_open():
    assert residence_time_open(100.0, 0.0) == 100.0
    assert residence_time_open(100.0, 0.5) == 200.0
    assert math.isinf(residence_time_open(100.0, 1.0))
    assert math.isinf(residence_time_open(100.0, 1.5))
    with pytest.raises(ValueError):
        residence_time_open(-1.0, 0.5)


def test_paper_demands_match_table2():
    d = ISDemands.paper()
    assert d.d_pd_cpu == 267.0
    assert d.d_pd_network == 71.0
    assert d.d_main_cpu == 3208.0
    assert d.d_pdm_cpu == 267.0


def test_cost_model_demands_scale_with_batch():
    daemon, main = DaemonCostModel(), MainCostModel()
    d1 = ISDemands.from_cost_models(daemon, main, batch_size=1)
    d32 = ISDemands.from_cost_models(daemon, main, batch_size=32)
    # Per-batch daemon CPU grows with batch (collection per sample).
    assert d32.d_pd_cpu > d1.d_pd_cpu
    # But per-sample cost shrinks.
    assert d32.d_pd_cpu / 32 < d1.d_pd_cpu
    # CF totals match the Table 2 exponential mean.
    assert d1.d_pd_cpu == pytest.approx(267.0)
