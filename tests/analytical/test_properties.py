"""Hypothesis properties of the analytic layer (paper §3, eqs 1–16).

Four families of properties:

* physical bounds — below saturation every utilization is in [0, 1]
  and every residence time is finite and at least the service demand;
* monotonicity — lengthening the sampling period or enlarging the
  batch (paper demands: per-batch cost independent of b) can only
  lower load and latency;
* law agreement — the NOW/SMP/MPP model methods are definitionally
  the raw operational laws of :mod:`repro.analytical.operational`
  applied to the IS demands, so they must agree exactly, not merely
  approximately;
* MVA — the exact MVA recursion lands on a Little's-law fixed point
  and respects the bottleneck bound at every population.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analytical import (
    ISDemands,
    MPPAnalyticalModel,
    MVACenter,
    NOWAnalyticalModel,
    SMPAnalyticalModel,
    forced_flow_law,
    mva,
    residence_time_open,
    utilization_law,
)

_SETTINGS = settings(max_examples=120, deadline=None)

# Plausible ranges around the paper's operating points (µs / counts).
periods = st.floats(min_value=1_000.0, max_value=1_000_000.0,
                    allow_nan=False, allow_infinity=False)
batches = st.integers(min_value=1, max_value=128)
now_nodes = st.integers(min_value=1, max_value=64)
mpp_nodes = st.sampled_from([2, 4, 8, 16, 64, 256, 1024])
smp_cpus = st.integers(min_value=1, max_value=64)
procs = st.integers(min_value=1, max_value=8)
demand_scale = st.floats(min_value=0.1, max_value=10.0,
                         allow_nan=False, allow_infinity=False)


def _demands(scale: float) -> ISDemands:
    base = ISDemands.paper()
    return ISDemands(
        d_pd_cpu=base.d_pd_cpu * scale,
        d_pd_network=base.d_pd_network * scale,
        d_main_cpu=base.d_main_cpu * scale,
        d_pdm_cpu=base.d_pdm_cpu * scale,
    )


def _now(nodes, period, batch, m, scale=1.0) -> NOWAnalyticalModel:
    return NOWAnalyticalModel(
        nodes=nodes,
        sampling_period=period,
        batch_size=batch,
        app_processes_per_node=m,
        demands=_demands(scale),
    )


# ---------------------------------------------------------------- bounds


@_SETTINGS
@given(nodes=now_nodes, period=periods, batch=batches, m=procs,
       scale=demand_scale)
def test_now_utilizations_bounded_below_saturation(
    nodes, period, batch, m, scale
):
    model = _now(nodes, period, batch, m, scale)
    utils = [
        model.pd_cpu_utilization(),
        model.pd_network_utilization(),
        model.paradyn_cpu_utilization(),
    ]
    assert all(u >= 0.0 for u in utils)
    latency = model.monitoring_latency()
    if all(u < 1.0 for u in utils[:2]):
        assert all(u <= 1.0 for u in utils[:2])
        assert math.isfinite(latency)
        # Residence of an open queue never beats its own demand.
        assert latency >= (
            model.demands.d_pd_cpu + model.demands.d_pd_network
        ) - 1e-9
    else:
        assert latency == math.inf


@_SETTINGS
@given(cpus=smp_cpus, period=periods, batch=batches, m=procs,
       k=st.integers(min_value=1, max_value=4), scale=demand_scale)
def test_smp_utilizations_bounded_below_saturation(
    cpus, period, batch, m, k, scale
):
    model = SMPAnalyticalModel(
        nodes=cpus,
        sampling_period=period,
        batch_size=batch,
        app_processes=m,
        daemons=k,
        demands=_demands(scale),
    )
    utils = [
        model.pd_cpu_utilization(),
        model.paradyn_cpu_utilization(),
        model.bus_utilization(),
    ]
    assert all(u >= 0.0 for u in utils)
    # μ_IS is a convex combination of μ_Pd and μ_Paradyn (eq 9).
    lo, hi = min(utils[0], utils[1]), max(utils[0], utils[1])
    assert lo - 1e-12 <= model.is_cpu_utilization() <= hi + 1e-12
    if utils[0] < 1.0 and utils[2] < 1.0:
        assert math.isfinite(model.monitoring_latency())
    else:
        assert model.monitoring_latency() == math.inf


@_SETTINGS
@given(nodes=mpp_nodes, period=periods, batch=batches, m=procs,
       tree=st.booleans(), scale=demand_scale)
def test_mpp_utilizations_bounded_below_saturation(
    nodes, period, batch, m, tree, scale
):
    model = MPPAnalyticalModel(
        nodes=nodes,
        sampling_period=period,
        batch_size=batch,
        app_processes_per_node=m,
        tree=tree,
        demands=_demands(scale),
    )
    u_cpu = model.pd_cpu_utilization()
    u_net = model.pd_network_utilization()
    assert u_cpu >= 0.0 and u_net >= 0.0
    if u_cpu < 1.0 and u_net < 1.0:
        assert math.isfinite(model.monitoring_latency())
    else:
        assert model.monitoring_latency() == math.inf


# ----------------------------------------------------------- monotonicity


@_SETTINGS
@given(nodes=now_nodes, period=periods, batch=batches, m=procs,
       stretch=st.floats(min_value=1.0, max_value=50.0,
                         allow_nan=False, allow_infinity=False))
def test_now_longer_period_never_increases_load(
    nodes, period, batch, m, stretch
):
    """Sampling rate 1/T drives every metric: slower sampling, less load."""
    fast = _now(nodes, period, batch, m)
    slow = _now(nodes, period * stretch, batch, m)
    assert slow.arrival_rate <= fast.arrival_rate
    assert slow.pd_cpu_utilization() <= fast.pd_cpu_utilization()
    assert slow.pd_network_utilization() <= fast.pd_network_utilization()
    assert slow.paradyn_cpu_utilization() <= fast.paradyn_cpu_utilization()
    assert slow.monitoring_latency() <= fast.monitoring_latency()
    assert slow.app_cpu_utilization() >= fast.app_cpu_utilization()


@_SETTINGS
@given(nodes=now_nodes, period=periods, batch=batches, m=procs,
       factor=st.integers(min_value=1, max_value=16))
def test_now_larger_batch_never_increases_load(
    nodes, period, batch, m, factor
):
    """Paper demands (Table 2) are per batch, so utilization ~ 1/b."""
    small = _now(nodes, period, batch, m)
    big = _now(nodes, period, batch * factor, m)
    assert big.pd_cpu_utilization() <= small.pd_cpu_utilization()
    assert big.pd_network_utilization() <= small.pd_network_utilization()
    assert big.paradyn_cpu_utilization() <= small.paradyn_cpu_utilization()
    assert big.monitoring_latency() <= small.monitoring_latency()
    # Exact 1/b scaling of the arrival rate (eq 1).
    assert math.isclose(
        big.arrival_rate * factor, small.arrival_rate, rel_tol=1e-12
    )


@_SETTINGS
@given(nodes=mpp_nodes, period=periods, batch=batches, m=procs)
def test_mpp_tree_adds_merge_work(nodes, period, batch, m):
    """Binary-tree forwarding adds μ from merge CPU at non-leaf daemons."""
    direct = MPPAnalyticalModel(
        nodes=nodes, sampling_period=period, batch_size=batch,
        app_processes_per_node=m, tree=False,
    )
    tree = MPPAnalyticalModel(
        nodes=nodes, sampling_period=period, batch_size=batch,
        app_processes_per_node=m, tree=True,
    )
    assert tree.pd_cpu_utilization() >= direct.pd_cpu_utilization() - 1e-12


# ---------------------------------------------------- operational laws


@_SETTINGS
@given(nodes=now_nodes, period=periods, batch=batches, m=procs,
       scale=demand_scale)
def test_now_agrees_with_raw_operational_laws(nodes, period, batch, m, scale):
    model = _now(nodes, period, batch, m, scale)
    lam = model.arrival_rate
    d = model.demands
    assert model.pd_cpu_utilization() == utilization_law(lam, d.d_pd_cpu)
    # Network sees forced flow from all n nodes (eq 3 = forced flow +
    # utilization law).
    net_rate = forced_flow_law(lam, nodes)
    assert model.pd_network_utilization() == utilization_law(
        net_rate, d.d_pd_network
    )
    assert model.paradyn_cpu_utilization() == utilization_law(
        net_rate, d.d_main_cpu
    )
    expected_r = residence_time_open(
        d.d_pd_cpu, model.pd_cpu_utilization()
    ) + residence_time_open(d.d_pd_network, model.pd_network_utilization())
    assert model.monitoring_latency() == expected_r


@_SETTINGS
@given(cpus=smp_cpus, period=periods, batch=batches, m=procs,
       k=st.integers(min_value=1, max_value=4))
def test_smp_agrees_with_raw_operational_laws(cpus, period, batch, m, k):
    model = SMPAnalyticalModel(
        nodes=cpus, sampling_period=period, batch_size=batch,
        app_processes=m, daemons=k,
    )
    lam = model.arrival_rate
    d = model.demands
    # (λ·D)/n vs λ·(D/n): equal up to float re-association only.
    assert math.isclose(
        model.pd_cpu_utilization(),
        utilization_law(lam, d.d_pd_cpu / cpus),
        rel_tol=1e-12,
    )
    assert model.bus_utilization() == utilization_law(lam, model.d_pd_bus)
    assert math.isclose(
        lam,
        forced_flow_law(1.0 / period / batch, m * k),
        rel_tol=1e-12,
    )


@_SETTINGS
@given(nodes=mpp_nodes, period=periods, batch=batches, m=procs)
def test_mpp_direct_is_now_on_contention_free_network(
    nodes, period, batch, m
):
    """Direct MPP forwarding reuses eqs (1)–(6) verbatim (§3.3)."""
    mpp = MPPAnalyticalModel(
        nodes=nodes, sampling_period=period, batch_size=batch,
        app_processes_per_node=m, tree=False,
    )
    now = _now(nodes, period, batch, m)
    assert mpp.arrival_rate == now.arrival_rate
    assert mpp.pd_cpu_utilization() == now.pd_cpu_utilization()
    assert mpp.pd_network_utilization() == now.pd_network_utilization()
    assert mpp.monitoring_latency() == now.monitoring_latency()


# ----------------------------------------------------------------- MVA

# Demands are either exactly zero or sane positive service times; a
# subnormal demand (1/d overflowing) is not a physical service center.
center_lists = st.lists(
    st.tuples(
        st.one_of(
            st.just(0.0),
            st.floats(min_value=0.01, max_value=10_000.0,
                      allow_nan=False, allow_infinity=False),
        ),
        st.booleans(),
    ),
    min_size=1,
    max_size=5,
)


@_SETTINGS
@given(spec=center_lists,
       population=st.integers(min_value=1, max_value=40),
       think=st.floats(min_value=0.0, max_value=100_000.0,
                       allow_nan=False, allow_infinity=False))
def test_mva_fixed_point_satisfies_littles_law(spec, population, think):
    centers = [
        MVACenter(name=f"c{i}", demand=d, delay=delay)
        for i, (d, delay) in enumerate(spec)
    ]
    assume(think > 0 or any(d > 0 for d, _ in spec))
    res = mva(centers, population, think_time=think)
    # Fixed point: N = X·(Z + R) exactly (Little's law over the cycle).
    assert math.isclose(
        res.throughput * (think + res.response_time),
        population,
        rel_tol=1e-9,
    )
    # Queue lengths are X·R_k and sum (with the think-time population)
    # back to N.
    in_centers = sum(res.center_queue)
    assert math.isclose(
        in_centers + res.throughput * think, population, rel_tol=1e-9
    )
    # Bottleneck bound: X ≤ 1/max D_k at queueing centers; U ≤ 1.
    for c, u in zip(centers, res.center_utilization):
        assert u == res.throughput * c.demand
        if not c.delay:
            assert u <= 1.0 + 1e-9


@_SETTINGS
@given(spec=center_lists,
       population=st.integers(min_value=1, max_value=30))
def test_mva_throughput_monotone_in_population(spec, population):
    centers = [
        MVACenter(name=f"c{i}", demand=d, delay=delay)
        for i, (d, delay) in enumerate(spec)
    ]
    assume(any(d > 0 for d, _ in spec))
    x_prev = 0.0
    for n in range(1, population + 1):
        x = mva(centers, n).throughput
        assert x >= x_prev * (1.0 - 1e-12)
        x_prev = x
