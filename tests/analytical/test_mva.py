"""Tests for exact MVA against closed-form queueing results."""

import pytest

from repro.analytical import MVACenter, mva


def test_single_customer_no_queueing():
    res = mva([MVACenter("cpu", 2213.0), MVACenter("net", 223.0)], 1)
    assert res.response_time == pytest.approx(2436.0)
    assert res.throughput == pytest.approx(1 / 2436.0)


def test_population_validation():
    with pytest.raises(ValueError):
        mva([MVACenter("cpu", 1.0)], 0)


def test_negative_demand_rejected():
    with pytest.raises(ValueError):
        mva([MVACenter("cpu", -1.0)], 1)


def test_utilization_law_holds():
    centers = [MVACenter("cpu", 100.0), MVACenter("disk", 50.0)]
    res = mva(centers, 5)
    for c, u in zip(centers, res.center_utilization):
        assert u == pytest.approx(res.throughput * c.demand)
    assert max(res.center_utilization) < 1.0


def test_bottleneck_saturates_at_large_population():
    centers = [MVACenter("cpu", 100.0), MVACenter("disk", 20.0)]
    res = mva(centers, 100)
    # X -> 1/D_max, bottleneck utilization -> 1.
    assert res.throughput == pytest.approx(1 / 100.0, rel=1e-3)
    assert res.center_utilization[0] == pytest.approx(1.0, rel=1e-3)


def test_littles_law_consistency():
    centers = [MVACenter("a", 10.0), MVACenter("b", 30.0)]
    res = mva(centers, 4, think_time=100.0)
    n_in_centers = sum(res.center_queue)
    n_thinking = res.throughput * 100.0
    assert n_in_centers + n_thinking == pytest.approx(4.0)


def test_delay_center_has_no_queueing():
    centers = [MVACenter("cpu", 50.0), MVACenter("net", 200.0, delay=True)]
    res = mva(centers, 10)
    # Residence at the delay center equals its demand regardless of load.
    assert res.center_residence[1] == pytest.approx(200.0)


def test_think_time_reduces_congestion():
    centers = [MVACenter("cpu", 100.0)]
    busy = mva(centers, 10, think_time=0.0)
    relaxed = mva(centers, 10, think_time=10_000.0)
    assert relaxed.center_queue[0] < busy.center_queue[0]


def test_matches_mm1_like_growth():
    """For a balanced 2-center network, response grows with N as
    R(N) = D (N + 1) ... for identical demands (classic result)."""
    d = 100.0
    centers = [MVACenter("a", d), MVACenter("b", d)]
    for n in (1, 2, 5, 10):
        res = mva(centers, n)
        assert res.response_time == pytest.approx(d * (n + 1), rel=1e-9)


def test_utilization_lookup_by_name():
    centers = [MVACenter("cpu", 10.0), MVACenter("net", 5.0)]
    res = mva(centers, 3)
    assert res.utilization("net", centers) == res.center_utilization[1]
    with pytest.raises(KeyError):
        res.utilization("gpu", centers)


def test_mva_cross_checks_simulator_app_throughput():
    """The uninstrumented application is a closed 2-center network; MVA's
    throughput should match the simulated cycle rate within noise."""
    from repro.rocc import SimulationConfig, simulate

    r = simulate(
        SimulationConfig(
            nodes=1, duration=3_000_000.0, instrumented=False,
            include_pvmd=False, include_other=False, seed=31,
        )
    )
    res = mva(
        [MVACenter("cpu", 2213.0), MVACenter("net", 223.0, delay=True)], 1
    )
    sim_rate = r.app_cycles / 3_000_000.0
    assert sim_rate == pytest.approx(res.throughput, rel=0.05)
