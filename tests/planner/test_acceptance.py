"""Acceptance benchmark: the planned quick NOW sweep must reach the
paper-table conclusions of the unplanned sweep while simulating at most
60 % of its cell-replications.

This is the planner's contract in one test: the savings are real (the
ISSUE's ≤ 60 % bound, with margin below the 100 % baseline) and the
science is preserved — the allocation-of-variation story the paper
tells about Table 4 (which factors dominate daemon CPU overhead, and
in which direction) is identical whether the pruned cells are simulated
or surrogate values.
"""

from __future__ import annotations

import math

import pytest

from repro.expdesign import allocate_variation
from repro.experiments import now_exp
from repro.experiments.engine import CellCache, ExperimentEngine
from repro.experiments.runners import run_design
from repro.planner import run_planned

METRIC = "pd_cpu_time_per_node"


@pytest.fixture(scope="module")
def planned_and_unplanned():
    spec = now_exp.design_spec(quick=True)
    with ExperimentEngine(workers=1, cache=CellCache(enabled=False)) as e:
        planned = run_planned(
            spec.design, spec.make, repetitions=spec.repetitions, engine=e
        )
        unplanned = run_design(
            spec.design, spec.make, repetitions=spec.repetitions, engine=e
        )
    return spec, planned, unplanned


def test_simulates_at_most_60_percent_of_baseline(planned_and_unplanned):
    spec, planned, _ = planned_and_unplanned
    baseline = spec.design.n_runs * spec.repetitions
    assert planned.baseline_replications == baseline
    assert planned.replications_used <= 0.6 * baseline, (
        f"planner simulated {planned.replications_used}/{baseline} "
        "cell-replications — over the 60% acceptance bound"
    )
    assert planned.cells_pruned > 0
    assert not planned.calibration_failed
    assert planned.calibration_error <= 0.15


def _allocation(design, values):
    return allocate_variation(design, [[v] for v in values])


def test_same_paper_table_conclusions(planned_and_unplanned):
    spec, planned, unplanned = planned_and_unplanned
    design = spec.design
    planned_vals = [getattr(c.value, METRIC) for c in planned.cells]
    unplanned_vals = [getattr(cell, METRIC) for cell in unplanned]
    assert all(math.isfinite(v) for v in planned_vals)

    via_plan = _allocation(design, planned_vals)
    via_sim = _allocation(design, unplanned_vals)

    # Conclusion 1: the same single factor dominates daemon CPU
    # overhead (the paper's headline from the Table 4 allocation).
    assert via_plan.top(1)[0].label == via_sim.top(1)[0].label

    # Conclusion 2: every main effect acts in the same direction.
    for label in design.labels:
        p = next(s.effect for s in via_plan.shares if s.label == label)
        u = next(s.effect for s in via_sim.shares if s.label == label)
        assert p * u >= 0, (
            f"main effect {label} flipped sign under the planner: "
            f"planned {p:.3g}, unplanned {u:.3g}"
        )

    # Conclusion 3: the worst-overhead cell is the same corner.
    assert planned_vals.index(max(planned_vals)) == unplanned_vals.index(
        max(unplanned_vals)
    )


def test_simulated_cells_match_unplanned_means(planned_and_unplanned):
    """Cells the planner simulated agree with the unplanned run on the
    overlapping replications (same seeds → same numbers)."""
    _, planned, unplanned = planned_and_unplanned
    for cell in planned.cells:
        if cell.source != "simulated":
            continue
        n = min(len(cell.results.results), len(unplanned[cell.index].results))
        for a, b in zip(
            cell.results.results[:n], unplanned[cell.index].results[:n]
        ):
            assert a.pd_cpu_time_per_node == b.pd_cpu_time_per_node
