"""Unit tests for surrogate interpolation (analytic + correction)."""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest

from repro.expdesign import Factor, FactorialDesign
from repro.planner import build_surrogates
from repro.planner.analytic import AnalyticPrediction
from repro.planner.screening import CellDecision, ScreeningReport


def _design():
    return FactorialDesign([Factor("x", 0, 1, "X")])


def _decision(index, simulate, metrics, trusted=True):
    return CellDecision(
        index=index,
        label=f"X{'+' if index else '-'}",
        simulate=simulate,
        reason="test",
        prediction=AnalyticPrediction(
            applicable=True,
            metrics=metrics,
            utilizations={"pd_cpu": 0.1},
        ),
        trusted=trusted,
    )


def _report(decisions):
    return ScreeningReport(design=_design(), decisions=decisions)


class TestCorrections:
    def test_additive_correction_from_anchor(self):
        # Anchor (cell 1): analytic 0.10, simulated 0.12 → residual +0.02
        # transfers additively onto the pruned cell's analytic 0.30.
        report = _report([
            _decision(0, simulate=False,
                      metrics={"pd_cpu_utilization_per_node": 0.30}),
            _decision(1, simulate=True,
                      metrics={"pd_cpu_utilization_per_node": 0.10}),
        ])
        simulated = {1: SimpleNamespace(pd_cpu_utilization_per_node=0.12)}
        cell = build_surrogates(report, simulated)[0]
        assert cell.anchors == [1]
        assert cell.corrected
        assert math.isclose(
            cell.metrics["pd_cpu_utilization_per_node"], 0.32
        )
        assert "correction from runs 1" in cell.tag

    def test_latency_correction_is_multiplicative(self):
        # Anchor latency ratio sim/analytic = 2.0 scales the pruned
        # cell's analytic latency; a raw residual would be on the wrong
        # scale entirely (per-batch vs per-sample residence).
        report = _report([
            _decision(0, simulate=False,
                      metrics={"monitoring_latency_forwarding": 400.0}),
            _decision(1, simulate=True,
                      metrics={"monitoring_latency_forwarding": 1000.0}),
        ])
        simulated = {
            1: SimpleNamespace(monitoring_latency_forwarding=2000.0)
        }
        cell = build_surrogates(report, simulated)[0]
        assert math.isclose(
            cell.metrics["monitoring_latency_forwarding"], 800.0
        )

    def test_clamped_non_negative(self):
        report = _report([
            _decision(0, simulate=False,
                      metrics={"pd_cpu_utilization_per_node": 0.01}),
            _decision(1, simulate=True,
                      metrics={"pd_cpu_utilization_per_node": 0.50}),
        ])
        simulated = {1: SimpleNamespace(pd_cpu_utilization_per_node=0.10)}
        cell = build_surrogates(report, simulated)[0]
        # 0.01 + (0.10 − 0.50) would be negative; clamped to zero.
        assert cell.metrics["pd_cpu_utilization_per_node"] == 0.0

    def test_untrusted_anchor_excluded(self):
        """A neighbor simulated because it *saturates* measures another
        regime; its residual must not leak into the correction."""
        report = _report([
            _decision(0, simulate=False,
                      metrics={"pd_cpu_utilization_per_node": 0.30}),
            _decision(1, simulate=True, trusted=False,
                      metrics={"pd_cpu_utilization_per_node": 0.10}),
        ])
        simulated = {1: SimpleNamespace(pd_cpu_utilization_per_node=0.95)}
        cell = build_surrogates(report, simulated)[0]
        assert cell.anchors == []
        assert not cell.corrected
        assert cell.tag == "surrogate (analytic only)"
        assert math.isclose(
            cell.metrics["pd_cpu_utilization_per_node"], 0.30
        )

    def test_nan_simulated_anchor_skipped(self):
        report = _report([
            _decision(0, simulate=False,
                      metrics={"monitoring_latency_forwarding": 100.0}),
            _decision(1, simulate=True,
                      metrics={"monitoring_latency_forwarding": 100.0}),
        ])
        simulated = {
            1: SimpleNamespace(monitoring_latency_forwarding=float("nan"))
        }
        cell = build_surrogates(report, simulated)[0]
        assert math.isclose(
            cell.metrics["monitoring_latency_forwarding"], 100.0
        )


class TestSurrogateCell:
    def _cell(self):
        report = _report([
            _decision(0, simulate=False,
                      metrics={"pd_cpu_utilization_per_node": 0.30}),
            _decision(1, simulate=True,
                      metrics={"pd_cpu_utilization_per_node": 0.10}),
        ])
        simulated = {1: SimpleNamespace(pd_cpu_utilization_per_node=0.12)}
        return build_surrogates(report, simulated)[0]

    def test_metric_attribute_access(self):
        cell = self._cell()
        assert cell.pd_cpu_utilization_per_node == cell.metrics[
            "pd_cpu_utilization_per_node"
        ]

    def test_unknown_metric_raises_attribute_error(self):
        cell = self._cell()
        with pytest.raises(AttributeError, match="analytic model"):
            cell.no_such_metric

    def test_only_pruned_cells_get_surrogates(self):
        report = _report([
            _decision(0, simulate=False, metrics={"m": 1.0}),
            _decision(1, simulate=True, metrics={"m": 1.0}),
        ])
        out = build_surrogates(report, {1: SimpleNamespace(m=1.0)})
        assert set(out) == {0}
