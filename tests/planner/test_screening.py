"""Unit tests for the analytic screen: trust, gradients, anchors."""

from __future__ import annotations

import math

import pytest

from repro.expdesign import Factor, FactorialDesign
from repro.planner import (
    ScreeningPolicy,
    applicability,
    predict,
    screen,
)
from repro.planner.screening import neighbors
from repro.rocc.config import (
    Architecture,
    FaultPlan,
    NetworkMode,
    SimulationConfig,
)


def _cfg(**kw) -> SimulationConfig:
    base = dict(nodes=2, duration=500_000.0, sampling_period=40_000.0)
    base.update(kw)
    return SimulationConfig(**base)


class TestApplicability:
    def test_default_config_is_modeled(self):
        assert applicability(_cfg()) is None

    def test_uninstrumented_rejected(self):
        assert "uninstrumented" in applicability(_cfg(instrumented=False))

    def test_fault_plan_rejected(self):
        reason = applicability(_cfg(faults=FaultPlan()))
        assert "fault" in reason

    def test_barrier_rejected(self):
        assert applicability(_cfg(barrier_period=5_000.0)) is not None

    def test_inapplicable_prediction_has_no_metrics(self):
        pred = predict(_cfg(instrumented=False))
        assert not pred.applicable
        assert pred.metrics == {}
        assert pred.max_utilization == 0.0


class TestPredict:
    def test_light_cell_unsaturated(self):
        pred = predict(_cfg(sampling_period=100_000.0, batch_size=8))
        assert pred.applicable and not pred.saturated
        assert 0.0 < pred.max_utilization < 0.5
        for name, value in pred.metrics.items():
            assert math.isfinite(value), name
            assert value >= 0.0, name

    def test_heavy_cell_saturates(self):
        # 1 ms sampling of 4 procs/node: λ·D_main >> 1 at the main host.
        pred = predict(
            _cfg(nodes=8, sampling_period=1_000.0, app_processes_per_node=4)
        )
        assert pred.saturated
        assert pred.max_utilization >= 1.0

    def test_utilizations_scale_with_sampling_rate(self):
        slow = predict(_cfg(sampling_period=80_000.0))
        fast = predict(_cfg(sampling_period=20_000.0))
        assert fast.max_utilization > slow.max_utilization

    def test_smp_exposes_is_cpu_utilization(self):
        pred = predict(
            _cfg(
                architecture=Architecture.SMP,
                nodes=4,
                app_processes_per_node=4,
                daemons=2,
                sampling_period=100_000.0,
            )
        )
        assert pred.applicable
        assert "is_cpu_utilization_per_node" in pred.metrics

    def test_drop_risk_requires_shared_network(self):
        pred = predict(
            _cfg(
                architecture=Architecture.MPP,
                nodes=4,
                network_mode=NetworkMode.CONTENTION_FREE,
            )
        )
        assert not pred.drop_risk
        assert pred.shared_network_offered == 0.0


class TestPolicy:
    def test_trust_bound_validated(self):
        with pytest.raises(ValueError):
            ScreeningPolicy(trust_utilization=0.0)
        with pytest.raises(ValueError):
            ScreeningPolicy(trust_utilization=1.0)

    def test_gradient_threshold_validated(self):
        with pytest.raises(ValueError):
            ScreeningPolicy(gradient_threshold=0.0)


def _design_and_configs(periods=(10_000.0, 160_000.0), batches=(1, 16)):
    design = FactorialDesign([
        Factor("sampling_period", *periods, "B"),
        Factor("batch_size", *batches, "C"),
    ])
    configs = [
        _cfg(
            sampling_period=run["sampling_period"],
            batch_size=int(run["batch_size"]),
        )
        for run in design.runs()
    ]
    return design, configs


class TestScreen:
    def test_one_decision_per_cell_in_standard_order(self):
        design, configs = _design_and_configs()
        report = screen(design, configs)
        assert [d.index for d in report.decisions] == list(range(4))
        assert all(d.reason for d in report.decisions)

    def test_config_count_mismatch_rejected(self):
        design, configs = _design_and_configs()
        with pytest.raises(ValueError):
            screen(design, configs[:-1])

    def test_every_pruned_cell_has_simulated_anchor(self):
        design, configs = _design_and_configs()
        report = screen(design, configs)
        simulated = set(report.simulated)
        for i in report.pruned:
            assert any(j in simulated for j in neighbors(design, i)), (
                f"pruned cell {i} has no simulated neighbor"
            )

    def test_never_prunes_everything(self):
        # All four cells sit deep in the trusted region.
        design, configs = _design_and_configs(
            periods=(200_000.0, 400_000.0), batches=(8, 16)
        )
        report = screen(design, configs)
        assert report.simulated, "design pruned to nothing"
        # The anchor pass is what kept them: reasons say so.
        anchors = [
            d for d in report.decisions
            if d.simulate and d.trusted
        ]
        assert anchors, "no anchor cells retained"
        assert any("anchor" in d.reason for d in anchors)

    def test_inapplicable_cells_always_simulated(self):
        design, configs = _design_and_configs()
        configs = [c.with_(instrumented=False) for c in configs]
        report = screen(design, configs)
        assert report.pruned == []
        assert all("uninstrumented" in d.reason for d in report.decisions)

    def test_strict_trust_bound_prunes_nothing(self):
        design, configs = _design_and_configs()
        report = screen(
            design, configs, ScreeningPolicy(trust_utilization=0.0001)
        )
        assert report.pruned == []

    def test_neighbors_are_hamming_one(self):
        design, _ = _design_and_configs()
        assert sorted(neighbors(design, 0)) == [1, 2]
        assert sorted(neighbors(design, 3)) == [1, 2]
