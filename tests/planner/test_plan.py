"""Integration tests for :func:`repro.planner.run_planned`."""

from __future__ import annotations

import math

import pytest

from repro.expdesign import Factor, FactorialDesign
from repro.experiments.engine import CellCache, ExperimentEngine
from repro.planner import PlannerConfig, ReplicationPolicy, run_planned
from repro.rocc.config import SimulationConfig


def _design():
    # Spans trusted (long period, big batch) and untrusted (short
    # period) regimes so both pruning and simulation happen.
    return FactorialDesign([
        Factor("sampling_period", 10_000.0, 160_000.0, "B"),
        Factor("batch_size", 1, 16, "C"),
    ])


def _make(run) -> SimulationConfig:
    return SimulationConfig(
        nodes=2,
        duration=500_000.0,
        sampling_period=run["sampling_period"],
        batch_size=int(run["batch_size"]),
        seed=11,
    )


@pytest.fixture
def engine():
    with ExperimentEngine(workers=1, cache=CellCache(enabled=False)) as e:
        yield e


def test_planned_design_structure(engine):
    plan = run_planned(_design(), _make, repetitions=2, engine=engine)
    assert [c.index for c in plan.cells] == list(range(4))
    assert plan.baseline_replications == 8
    assert plan.replications_used <= 8
    for cell in plan.cells:
        if cell.source == "simulated":
            assert cell.results is not None
            assert "simulated" in cell.tag
        else:
            assert cell.surrogate is not None
            assert cell.results is None
            assert "surrogate" in cell.tag
    assert plan.cells_pruned == sum(
        1 for c in plan.cells if c.source == "surrogate"
    )
    assert "cells pruned" in plan.summary()


def test_engine_stats_and_savings(engine):
    before_pruned = engine.stats.cells_pruned
    before_saved = engine.stats.replications_saved
    plan = run_planned(_design(), _make, repetitions=2, engine=engine)
    assert engine.stats.cells_pruned - before_pruned == plan.cells_pruned
    assert (
        engine.stats.replications_saved - before_saved
        == plan.replications_saved
    )
    assert (
        plan.replications_saved
        == plan.baseline_replications - plan.replications_used
    )


def test_calibration_gate_unprunes_everything(engine):
    """An impossible tolerance must force full simulation, not quietly
    ship surrogate values from a distrusted model."""
    planner = PlannerConfig(calibration_tolerance=1e-12)
    plan = run_planned(
        _design(), _make, repetitions=2, planner=planner, engine=engine
    )
    assert plan.calibration_failed
    assert plan.cells_pruned == 0
    assert all(c.source == "simulated" for c in plan.cells)
    assert "FAILED" in plan.summary()


def test_budget_caps_total_replications(engine):
    planner = PlannerConfig(budget=4)
    plan = run_planned(
        _design(), _make, repetitions=2, planner=planner, engine=engine
    )
    assert plan.replications_used <= 4


def test_tight_ci_target_grows_within_baseline_budget(engine):
    planner = PlannerConfig(
        replication=ReplicationPolicy(ci_target=0.0001, max_replications=4)
    )
    plan = run_planned(
        _design(), _make, repetitions=2, planner=planner, engine=engine
    )
    # The default budget is the fixed-r baseline: adaptive growth can
    # spend the savings from pruning but never exceed the baseline.
    assert plan.replications_used <= plan.baseline_replications


def test_surrogate_values_are_finite_and_plausible(engine):
    plan = run_planned(_design(), _make, repetitions=2, engine=engine)
    pruned = [c for c in plan.cells if c.source == "surrogate"]
    if not pruned:
        pytest.skip("nothing pruned on this design")
    for cell in pruned:
        value = cell.value.pd_cpu_utilization_per_node
        assert math.isfinite(value)
        assert 0.0 <= value <= 1.0


def test_repetitions_validated(engine):
    with pytest.raises(ValueError):
        run_planned(_design(), _make, repetitions=0, engine=engine)
