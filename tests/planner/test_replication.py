"""Unit tests for adaptive replication: policy, budget, convergence."""

from __future__ import annotations

import pytest

from repro.experiments.engine import CellCache, ExperimentEngine
from repro.experiments.runners import replicate
from repro.planner import (
    ReplicationBudget,
    ReplicationPolicy,
    adaptive_replicate,
    continue_replication,
)
from repro.rocc.config import SimulationConfig


def _cfg(**kw) -> SimulationConfig:
    base = dict(
        nodes=2, duration=500_000.0, sampling_period=20_000.0, seed=9
    )
    base.update(kw)
    return SimulationConfig(**base)


@pytest.fixture
def engine():
    with ExperimentEngine(workers=1, cache=CellCache(enabled=False)) as e:
        yield e


class TestPolicy:
    def test_defaults_valid(self):
        ReplicationPolicy()

    @pytest.mark.parametrize(
        "kw",
        [
            dict(ci_target=0.0),
            dict(ci_target=-0.1),
            dict(level=0.0),
            dict(level=1.0),
            dict(min_replications=0),
            dict(min_replications=5, max_replications=4),
            dict(metrics=()),
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            ReplicationPolicy(**kw)


class TestBudget:
    def test_unbounded_by_default(self):
        budget = ReplicationBudget()
        assert budget.remaining() == float("inf")
        assert budget.take(1_000) == 1_000

    def test_take_caps_at_remaining(self):
        budget = ReplicationBudget(total=5)
        assert budget.take(3) == 3
        assert budget.take(3) == 2
        assert budget.take(3) == 0
        assert budget.used == 5
        assert budget.remaining() == 0

    def test_take_never_overdraws(self):
        budget = ReplicationBudget(total=2, used=2)
        assert budget.take(1) == 0


class TestAdaptiveReplicate:
    def test_runs_at_least_min_replications(self, engine):
        policy = ReplicationPolicy(
            ci_target=10.0, min_replications=2, max_replications=8
        )
        res = adaptive_replicate(_cfg(), policy, engine=engine)
        assert len(res.results) == 2

    def test_loose_target_stops_at_minimum(self, engine):
        policy = ReplicationPolicy(ci_target=5.0)
        res = adaptive_replicate(_cfg(), policy, engine=engine)
        assert len(res.results) == policy.min_replications

    def test_tight_target_adds_replications(self, engine):
        policy = ReplicationPolicy(
            ci_target=0.0001, min_replications=2, max_replications=5
        )
        res = adaptive_replicate(_cfg(), policy, engine=engine)
        assert 2 < len(res.results) <= 5

    def test_budget_caps_growth(self, engine):
        policy = ReplicationPolicy(
            ci_target=0.0001, min_replications=2, max_replications=8
        )
        budget = ReplicationBudget(total=3)
        res = adaptive_replicate(_cfg(), policy, budget, engine=engine)
        assert len(res.results) == 3
        assert budget.remaining() == 0

    def test_bit_identical_to_fixed_r(self, engine):
        """Replication numbering matches the fixed-r runners exactly."""
        from repro.verify.differential import diff_results

        cfg = _cfg()
        policy = ReplicationPolicy(
            ci_target=10.0, min_replications=3, max_replications=3
        )
        adaptive = adaptive_replicate(cfg, policy, engine=engine)
        fixed = replicate(cfg, repetitions=3, engine=engine)
        for a, b in zip(adaptive.results, fixed.results):
            assert diff_results(a, b) == []

    def test_continue_replication_tops_up(self, engine):
        cfg = _cfg()
        seed = replicate(cfg, repetitions=2, engine=engine)
        policy = ReplicationPolicy(
            ci_target=0.0001, min_replications=2, max_replications=4
        )
        grown = continue_replication(
            cfg, seed, policy, ReplicationBudget(), engine=engine
        )
        assert len(grown.results) == 4
        from repro.verify.differential import diff_results

        for a, b in zip(seed.results, grown.results):
            assert diff_results(a, b) == []
