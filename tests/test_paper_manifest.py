"""Keeps the paper-claims manifest consistent with the experiment registry."""

from repro.experiments import list_experiments
from repro.paper import CLAIMS, PAPER, Status, claims_by_status


def test_paper_identity():
    assert "Paradyn" in PAPER["title"]
    assert PAPER["year"] == 1996
    assert "Jeffrey K. Hollingsworth" in PAPER["authors"]


def test_every_claim_references_registered_experiments():
    registered = {e.id for e in list_experiments()}
    for claim in CLAIMS:
        assert claim.experiments, f"{claim.id} cites no experiments"
        for exp in claim.experiments:
            assert exp in registered, f"{claim.id} cites unknown {exp!r}"


def test_claim_ids_unique():
    ids = [c.id for c in CLAIMS]
    assert len(ids) == len(set(ids))


def test_headline_claims_reproduced():
    reproduced = {c.id for c in claims_by_status(Status.REPRODUCED)}
    assert "bf-pd-overhead" in reproduced
    assert "bf-main-overhead" in reproduced
    assert "app-independence" in reproduced


def test_divergences_carry_notes():
    for claim in CLAIMS:
        if claim.status is not Status.REPRODUCED:
            assert claim.note, f"{claim.id} needs an explanatory note"


def test_status_partition():
    total = sum(len(claims_by_status(s)) for s in Status)
    assert total == len(CLAIMS)
    # The overwhelming majority of claims reproduce.
    assert len(claims_by_status(Status.DIVERGES)) <= 2
