"""Property-based tests of kernel invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, Resource, Store


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_timeouts_fire_in_sorted_order(delays):
    env = Environment()
    fired = []

    def proc(env, d):
        yield env.timeout(d)
        fired.append(d)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=30),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50)
def test_resource_conservation(holds, capacity):
    """Every requester is eventually served exactly once, and total busy
    time equals the sum of hold times (single-resource work conservation)."""
    env = Environment()
    res = Resource(env, capacity=capacity)
    served = []

    def user(env, hold):
        with res.request() as req:
            yield req
            start = env.now
            yield env.timeout(hold)
            served.append((start, hold))

    for h in holds:
        env.process(user(env, h))
    env.run()
    assert len(served) == len(holds)
    assert sorted(h for _, h in served) == sorted(holds)
    # With capacity c, makespan >= total work / c and >= max hold.
    total = sum(holds)
    assert env.now >= max(holds) - 1e-9
    assert env.now >= total / capacity - 1e-9
    assert env.now <= total + 1e-9  # never slower than serial


@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=50)
def test_store_item_conservation(n_items, capacity):
    """Everything put into a bounded store comes out, in FIFO order."""
    env = Environment()
    store = Store(env, capacity=capacity)
    out = []

    def producer(env):
        for i in range(n_items):
            yield store.put(i)

    def consumer(env):
        for _ in range(n_items):
            item = yield store.get()
            out.append(item)
            yield env.timeout(1)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert out == list(range(n_items))
    assert len(store) == 0


@given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=40))
def test_clock_never_goes_backwards(delays):
    env = Environment()
    stamps = []

    def watcher(env):
        while True:
            yield env.timeout(0.5)
            stamps.append(env.now)

    def work(env, d):
        yield env.timeout(d)
        stamps.append(env.now)

    env.process(watcher(env))
    for d in delays:
        env.process(work(env, d))
    env.run(until=max(delays) + 1 if max(delays) > 0 else 1)
    assert all(a <= b for a, b in zip(stamps, stamps[1:]))
