"""Fast-path kernel tests: holds, event pooling, and the escape hatch.

The optimizations under test here (``Environment.hold``, the Hold and
Timeout free lists, the inlined ``_run_inner`` dispatch loop) promise
*exact* equivalence with the generic kernel — same event order, same
clock, same values — so most tests assert behaviour identical to a
plain-timeout formulation, plus the object-identity facts (recycling)
that make the fast path fast.
"""

import pytest

from repro.des import Environment, Interrupt, SimulationStalled, Timeout
from repro.des.core import _POOL_LIMIT
from repro.des.events import HOLD_COMPLETED, Hold


@pytest.fixture
def env():
    return Environment()


# ----------------------------------------------------------------------
# Hold semantics
# ----------------------------------------------------------------------
def test_hold_advances_clock_like_timeout(env):
    log = []

    def proc(env):
        yield env.hold(10)
        log.append(env.now)
        yield env.hold(2.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [10.0, 12.5]


def test_hold_returns_sentinel_inside_process(env):
    seen = []

    def proc(env):
        seen.append(env.hold(1))
        yield seen[-1]

    env.process(proc(env))
    env.run()
    assert seen == [HOLD_COMPLETED]


def test_hold_outside_process_falls_back_to_timeout(env):
    ev = env.hold(5.0)
    assert isinstance(ev, Timeout)
    env.run()
    assert env.now == 5.0


def test_hold_negative_delay_rejected(env):
    def proc(env):
        with pytest.raises(ValueError):
            env.hold(-1)
        yield env.hold(1)

    env.process(proc(env))
    env.run()


def test_holds_interleave_with_timeouts_fifo(env):
    """Same-time holds and timeouts fire in scheduling order (eid ties)."""
    log = []

    def holder(env, name):
        yield env.hold(10)
        log.append(name)

    def sleeper(env, name):
        yield env.timeout(10)
        log.append(name)

    env.process(holder(env, "a"))
    env.process(sleeper(env, "b"))
    env.process(holder(env, "c"))
    env.run()
    assert log == ["a", "b", "c"]


# ----------------------------------------------------------------------
# Pool recycling
# ----------------------------------------------------------------------
def test_hold_objects_are_recycled(env):
    def proc(env):
        for _ in range(5):
            yield env.hold(1)

    env.process(proc(env))
    env.run()
    # One hold in flight at a time -> the free list stabilizes at one
    # instance, reused for every subsequent sleep.
    assert len(env._hold_pool) == 1


def test_hold_pool_is_capped(env):
    def proc(env):
        yield env.hold(1)

    for _ in range(_POOL_LIMIT + 50):
        env.process(proc(env))
    env.run()
    assert len(env._hold_pool) <= _POOL_LIMIT


def test_timeout_objects_are_recycled(env):
    holder = {}

    def a(env):
        t = env.timeout(1)
        holder["first"] = t
        yield t

    def b(env):
        yield env.timeout(2)
        # a's timeout fired (and was pooled) at t=1; the sleep created
        # here at t=2 reuses that exact instance, fully reset.
        holder["reused"] = env.timeout(1, value="v")

    env.process(a(env))
    env.process(b(env))
    env.run()
    assert holder["reused"] is holder["first"]
    assert holder["reused"]._value == "v"


def test_condition_constituent_timeouts_are_not_recycled(env):
    """A timeout inside ``a | b`` is re-inspected after processing (its
    value lands in the condition result), so it must never be pooled."""

    def proc(env):
        t = env.timeout(5, value="x")
        other = env.event()
        result = yield t | other
        assert result[t] == "x"
        assert t._value == "x"

    env.process(proc(env))
    env.run()
    assert env._timeout_pool == []


# ----------------------------------------------------------------------
# Interrupts (S4: stale state must not leak through the pools)
# ----------------------------------------------------------------------
def test_interrupt_during_hold(env):
    log = []

    def worker(env):
        try:
            yield env.hold(100)
            log.append("completed")
        except Interrupt as exc:
            log.append(("interrupted", env.now, exc.cause))
            yield env.hold(10)
            log.append(("resumed", env.now))

    def canceller(env, victim):
        yield env.hold(30)
        victim.interrupt("stop")

    victim = env.process(worker(env))
    env.process(canceller(env, victim))
    env.run()
    assert log == [("interrupted", 30.0, "stop"), ("resumed", 40.0)]
    # The orphaned heap entry for the cancelled hold was processed (and
    # recycled) without resuming anyone.
    assert env.now == 100.0


def test_interrupted_timeout_reuse_does_not_leak_stale_state(env):
    """A timeout abandoned by an interrupt is pooled once it fires; the
    instance that later reuses it must not deliver the stale value or
    resume the interrupted process a second time."""
    log = []
    stale = {}

    def worker(env):
        t = env.timeout(10, value="stale")
        stale["t"] = t
        try:
            yield t
            log.append("wrong: timeout delivered")
        except Interrupt:
            log.append("interrupted")
            got = yield env.event() | env.timeout(50, value="fresh")
            log.append(sorted(got.values()))

    def canceller(env, victim):
        yield env.hold(5)
        victim.interrupt()

    victim = env.process(worker(env))
    env.process(canceller(env, victim))

    # Run past t=10: the abandoned timeout fires with no waiters left
    # (the interrupt detached the worker's resume callback) and is
    # recycled into the pool.
    env.run(until=20.0)
    assert log == ["interrupted"]
    assert stale["t"] in env._timeout_pool
    assert stale["t"].processed  # stale reference still looks processed

    # Reuse the pooled instance for an unrelated sleep.
    fresh = env.timeout(1, value="other")
    assert fresh is stale["t"]
    assert fresh._value == "other"
    assert fresh.callbacks == []

    env.run()
    # The worker saw only its own fresh timeout, never the stale value.
    assert log == ["interrupted", ["fresh"]]


def test_failed_event_semantics_survive_fastpath(env):
    caught = []

    def proc(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))
        yield env.hold(1)

    ev = env.event()
    env.process(proc(env, ev))
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


# ----------------------------------------------------------------------
# Stall diagnostics (S1)
# ----------------------------------------------------------------------
def test_stalled_watchdog_names_processes_parked_on_holds(env):
    def sleeper(env):
        while True:
            yield env.hold(1.0)

    env.process(sleeper(env), name="hot-sleeper")
    with pytest.raises(SimulationStalled) as exc_info:
        env.run(max_events=10)
    assert "hot-sleeper" in exc_info.value.blocked
    assert "hot-sleeper" in str(exc_info.value)


# ----------------------------------------------------------------------
# Escape hatch
# ----------------------------------------------------------------------
def test_fastpath_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_DES_FASTPATH", "0")
    env = Environment()
    assert not env._fastpath
    seen = []

    def proc(env):
        ev = env.hold(10)
        seen.append(ev)
        yield ev
        first = env.timeout(1)
        yield first
        second = env.timeout(1)
        yield second
        assert second is not first  # no recycling on the generic path

    env.process(proc(env))
    env.run()
    assert isinstance(seen[0], Timeout)  # hold degraded to a timeout
    assert env._timeout_pool == []
    assert env._hold_pool == []
    assert env.now == 12.0


def test_fastpath_and_generic_produce_identical_traces(monkeypatch):
    """The same model stepped under both kernels yields the same event
    history (kind, time) and final state."""
    from repro.des import EventLog

    def model(env):
        def app(env, period, n):
            for _ in range(n):
                yield env.hold(period)

        def poller(env):
            while True:
                yield env.timeout(7.0)

        env.process(app(env, 3.0, 10), name="app")
        env.process(app(env, 5.0, 6), name="app2")
        env.process(poller(env), name="poller")
        with EventLog(env) as log:
            env.run(until=30.0)
        return [(e.time, e.kind) for e in log.entries], env.now

    monkeypatch.setenv("REPRO_DES_FASTPATH", "1")
    fast = model(Environment())
    monkeypatch.setenv("REPRO_DES_FASTPATH", "0")
    generic = model(Environment())
    assert fast == generic
