"""Tests for the Tally and TimeWeighted statistics accumulators."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des import P2Quantile, ReservoirSample, Tally, TimeWeighted


class TestTally:
    def test_empty(self):
        t = Tally()
        assert t.count == 0
        assert math.isnan(t.mean)
        assert math.isnan(t.variance)
        assert math.isnan(t.minimum)

    def test_single_observation(self):
        t = Tally()
        t.observe(5.0)
        assert t.mean == 5.0
        assert t.minimum == t.maximum == 5.0
        assert math.isnan(t.variance)

    def test_matches_numpy(self):
        data = [3.1, 4.1, 5.9, 2.6, 5.3, 5.8]
        t = Tally()
        for v in data:
            t.observe(v)
        assert t.mean == pytest.approx(np.mean(data))
        assert t.variance == pytest.approx(np.var(data, ddof=1))
        assert t.std == pytest.approx(np.std(data, ddof=1))
        assert t.total == pytest.approx(sum(data))

    def test_series_retention(self):
        t = Tally(keep_series=True)
        t.observe(1.0)
        t.observe(2.0)
        assert t.series == [1.0, 2.0]
        assert Tally().series is None

    def test_merge_matches_combined(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=50), rng.normal(loc=3, size=70)
        ta, tb = Tally(), Tally()
        for v in a:
            ta.observe(v)
        for v in b:
            tb.observe(v)
        ta.merge(tb)
        combined = np.concatenate([a, b])
        assert ta.count == 120
        assert ta.mean == pytest.approx(np.mean(combined))
        assert ta.variance == pytest.approx(np.var(combined, ddof=1))
        assert ta.minimum == pytest.approx(combined.min())
        assert ta.maximum == pytest.approx(combined.max())

    def test_merge_into_empty(self):
        ta, tb = Tally(), Tally()
        tb.observe(2.0)
        tb.observe(4.0)
        ta.merge(tb)
        assert ta.mean == pytest.approx(3.0)

    def test_merge_empty_is_noop(self):
        ta = Tally()
        ta.observe(1.0)
        ta.merge(Tally())
        assert ta.count == 1

    def test_merge_of_splits_equals_serial_observe(self):
        """Splitting a stream into chunks and merging the partial
        tallies reproduces serial observation of the whole stream."""
        rng = np.random.default_rng(7)
        data = rng.normal(loc=2.0, scale=5.0, size=200)
        serial = Tally(keep_series=True)
        for v in data:
            serial.observe(v)
        merged = Tally(keep_series=True)
        for chunk in np.array_split(data, [3, 17, 18, 120]):  # uneven splits
            part = Tally(keep_series=True)
            for v in chunk:
                part.observe(v)
            merged.merge(part)
        assert merged.count == serial.count
        assert merged.mean == pytest.approx(serial.mean, rel=1e-12)
        assert merged.variance == pytest.approx(serial.variance, rel=1e-9)
        assert merged.total == pytest.approx(serial.total, rel=1e-12)
        assert merged.minimum == serial.minimum
        assert merged.maximum == serial.maximum
        assert merged.series == serial.series

    def test_merge_refuses_seriesless_source_into_series_keeper(self):
        keeper = Tally("dst", keep_series=True)
        keeper.observe(1.0)
        other = Tally("src")
        other.observe(2.0)
        with pytest.raises(ValueError, match="stop mirroring"):
            keeper.merge(other)
        # The refused merge must not have touched the destination.
        assert keeper.count == 1 and keeper.series == [1.0]

    def test_merge_empty_seriesless_into_series_keeper_is_noop(self):
        keeper = Tally(keep_series=True)
        keeper.observe(1.0)
        keeper.merge(Tally())  # empty: nothing to mirror, allowed
        assert keeper.count == 1

    def test_merge_series_keeper_into_seriesless(self):
        dst = Tally()
        dst.observe(1.0)
        src = Tally(keep_series=True)
        src.observe(3.0)
        dst.merge(src)  # dst keeps no series; nothing can desync
        assert dst.count == 2 and dst.mean == pytest.approx(2.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=60))
    def test_welford_agrees_with_numpy(self, data):
        t = Tally()
        for v in data:
            t.observe(v)
        assert t.mean == pytest.approx(float(np.mean(data)), rel=1e-9, abs=1e-9)
        assert t.variance == pytest.approx(
            float(np.var(data, ddof=1)), rel=1e-6, abs=1e-6
        )


class TestTimeWeighted:
    def test_integral_of_constant(self):
        tw = TimeWeighted(initial=2.0)
        assert tw.integral(10.0) == 20.0

    def test_step_function(self):
        tw = TimeWeighted()
        tw.update(1.0, 5.0)  # 0 until t=5
        tw.update(3.0, 10.0)  # 1 on [5,10)
        assert tw.integral(20.0) == pytest.approx(0 * 5 + 1 * 5 + 3 * 10)
        assert tw.time_average(20.0) == pytest.approx(35.0 / 20.0)

    def test_increment(self):
        tw = TimeWeighted()
        tw.increment(2, 1.0)
        tw.increment(-1, 3.0)
        assert tw.value == 1.0
        assert tw.integral(4.0) == pytest.approx(0 + 2 * 2 + 1 * 1)

    def test_time_cannot_go_backwards(self):
        tw = TimeWeighted()
        tw.update(1.0, 5.0)
        with pytest.raises(ValueError):
            tw.update(2.0, 4.0)
        with pytest.raises(ValueError):
            tw.integral(4.0)

    def test_maximum_tracked(self):
        tw = TimeWeighted()
        tw.update(7.0, 1.0)
        tw.update(2.0, 2.0)
        assert tw.maximum == 7.0

    def test_time_average_with_nonzero_start(self):
        tw = TimeWeighted(initial=4.0, start_time=10.0)
        assert tw.time_average(20.0) == pytest.approx(4.0)

    def test_zero_span_is_nan(self):
        tw = TimeWeighted()
        assert math.isnan(tw.time_average(0.0))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=100),  # dt
                st.floats(min_value=-50, max_value=50),  # new value
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_integral_matches_direct_sum(self, steps):
        tw = TimeWeighted()
        now = 0.0
        expected = 0.0
        value = 0.0
        for dt, new in steps:
            expected += value * dt
            now += dt
            tw.update(new, now)
            value = new
        assert tw.integral(now) == pytest.approx(expected, rel=1e-9, abs=1e-6)


class TestP2Quantile:
    def test_exact_below_five(self):
        est = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            est.observe(v)
        assert est.value == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.9).value)

    def test_rejects_degenerate_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_tracks_lognormal_within_tolerance(self, q):
        rng = np.random.default_rng(42)
        data = rng.lognormal(mean=3.0, sigma=1.0, size=50_000)
        est = P2Quantile(q)
        for v in data:
            est.observe(v)
        exact = float(np.percentile(data, q * 100.0))
        # Documented accuracy envelope: a few percent for p50/p90,
        # ~10% for p99 on heavy-tailed streams.
        tol = 0.10 if q >= 0.99 else 0.05
        assert est.value == pytest.approx(exact, rel=tol)
        assert est.count == len(data)

    def test_monotone_markers_on_constant_stream(self):
        est = P2Quantile(0.5)
        for _ in range(100):
            est.observe(7.0)
        assert est.value == pytest.approx(7.0)


class TestReservoirSample:
    def test_keeps_everything_below_cap(self):
        res = ReservoirSample(10, seed=1)
        for v in range(7):
            res.observe(float(v))
        assert sorted(res.items) == [float(v) for v in range(7)]
        assert res.count == 7

    def test_size_is_capped(self):
        res = ReservoirSample(16, seed=1)
        for v in range(10_000):
            res.observe(float(v))
        assert len(res) == 16
        assert res.count == 10_000

    def test_roughly_uniform(self):
        # Mean of a uniform subsample of 0..n-1 should sit near (n-1)/2.
        res = ReservoirSample(512, seed=7)
        n = 20_000
        for v in range(n):
            res.observe(float(v))
        mean = sum(res.items) / len(res)
        assert abs(mean - (n - 1) / 2) < n * 0.05

    def test_deterministic_given_seed(self):
        a = ReservoirSample(8, seed=3)
        b = ReservoirSample(8, seed=3)
        for v in range(1000):
            a.observe(float(v))
            b.observe(float(v))
        assert a.items == b.items


class TestTallySeriesCap:
    def test_series_capped_and_moments_exact(self):
        t = Tally("capped", keep_series=True, series_cap=32)
        data = [float(i) for i in range(1000)]
        for v in data:
            t.observe(v)
        assert len(t.series) == 32
        assert t.series_subsampled
        assert t.count == 1000
        # Moments stay exact regardless of the series subsampling.
        assert t.mean == pytest.approx(np.mean(data))
        assert t.variance == pytest.approx(np.var(data, ddof=1))
        # Every retained value came from the stream.
        assert set(t.series) <= set(data)

    def test_no_cap_keeps_all(self):
        t = Tally(keep_series=True)
        for v in range(100):
            t.observe(float(v))
        assert len(t.series) == 100
        assert not t.series_subsampled

    def test_merge_refused_after_subsampling(self):
        a = Tally("a", keep_series=True, series_cap=4)
        b = Tally("b", keep_series=True)
        for v in range(10):
            a.observe(float(v))
        b.observe(1.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_refused_when_it_would_overflow(self):
        a = Tally("a", keep_series=True, series_cap=4)
        b = Tally("b", keep_series=True)
        for v in range(3):
            a.observe(float(v))
            b.observe(float(v))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            Tally(keep_series=True, series_cap=0)
