"""Tests for Process: lifecycle, joins, interrupts, error propagation."""

import pytest

from repro.des import Environment, Interrupt


def test_process_is_event_with_return_value(env):
    def child(env):
        yield env.timeout(2)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        return value * 2

    p = env.process(parent(env))
    assert env.run(until=p) == 84


def test_process_alive_until_generator_ends(env):
    def proc(env):
        yield env.timeout(10)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_yielding_non_event_raises(env):
    def proc(env):
        yield 5

    env.process(proc(env))
    with pytest.raises(TypeError, match="non-event"):
        env.run()


def test_exception_in_process_propagates(env):
    def proc(env):
        yield env.timeout(1)
        raise KeyError("inner")

    env.process(proc(env))
    with pytest.raises(KeyError):
        env.run()


def test_waiter_sees_child_exception(env):
    def child(env):
        yield env.timeout(1)
        raise ValueError("child died")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return f"caught: {exc}"

    p = env.process(parent(env))
    assert env.run(until=p) == "caught: child died"


def test_interrupt_delivers_cause(env):
    causes = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            causes.append(i.cause)
            causes.append(env.now)

    def attacker(env, v):
        yield env.timeout(5)
        v.interrupt("preempted!")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert causes == ["preempted!", 5.0]


def test_interrupt_detaches_from_original_target(env):
    log = []

    def victim(env):
        try:
            yield env.timeout(10)
            log.append("timeout fired")
        except Interrupt:
            log.append("interrupted")
            yield env.timeout(100)
            log.append("second wait done")

    def attacker(env, v):
        yield env.timeout(1)
        v.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    # The original 10-unit timeout must not resume the process again.
    assert log == ["interrupted", "second wait done"]


def test_self_interrupt_forbidden(env):
    def proc(env):
        env.active_process.interrupt()
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="not allowed to interrupt itself"):
        env.run()


def test_interrupt_terminated_process_rejected(env):
    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    with pytest.raises(RuntimeError, match="terminated"):
        p.interrupt()


def test_interrupt_race_with_termination_is_ignored(env):
    """An interrupt scheduled at the same instant the victim finishes
    must not blow up."""

    def victim(env):
        yield env.timeout(5)

    def attacker(env, v):
        yield env.timeout(5)
        if v.is_alive:
            v.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()  # must not raise


def test_uncaught_interrupt_propagates(env):
    def victim(env):
        yield env.timeout(100)

    def attacker(env, v):
        yield env.timeout(1)
        v.interrupt("bye")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    with pytest.raises(Interrupt):
        env.run()


def test_process_requires_generator(env):
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_process_name_from_function(env):
    def my_model(env):
        yield env.timeout(1)

    p = env.process(my_model(env))
    assert p.name == "my_model"
    p2 = env.process(my_model(env), name="custom")
    assert p2.name == "custom"


def test_two_processes_communicate_via_event(env):
    log = []

    def producer(env, ev):
        yield env.timeout(3)
        ev.succeed("payload")

    def consumer(env, ev):
        value = yield ev
        log.append((env.now, value))

    ev = env.event()
    env.process(producer(env, ev))
    env.process(consumer(env, ev))
    env.run()
    assert log == [(3.0, "payload")]


def test_immediate_return_process(env):
    def proc(env):
        return "quick"
        yield  # pragma: no cover

    p = env.process(proc(env))
    assert env.run(until=p) == "quick"
