"""Edge-case tests for kernel interactions: nested conditions,
interrupts during composite waits, process joins on finished processes."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Interrupt


def test_nested_all_of_any_of(env):
    done = []

    def proc(env):
        fast = AnyOf(env, [env.timeout(10), env.timeout(3)])
        slow = AllOf(env, [env.timeout(5), env.timeout(7)])
        yield AllOf(env, [fast, slow])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [7.0]


def test_interrupt_while_waiting_on_condition(env):
    log = []

    def victim(env):
        try:
            yield env.timeout(50) & env.timeout(60)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def attacker(env, v):
        yield env.timeout(5)
        v.interrupt("now")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [(5.0, "now")]


def test_join_already_finished_process(env):
    def child(env):
        yield env.timeout(1)
        return 99

    def parent(env, c):
        yield env.timeout(10)  # child long done by now
        value = yield c
        return value

    c = env.process(child(env))
    p = env.process(parent(env, c))
    assert env.run(until=p) == 99


def test_multiple_waiters_on_one_process(env):
    values = []

    def child(env):
        yield env.timeout(4)
        return "payload"

    def waiter(env, c, name):
        v = yield c
        values.append((name, v, env.now))

    c = env.process(child(env))
    env.process(waiter(env, c, "w1"))
    env.process(waiter(env, c, "w2"))
    env.run()
    assert sorted(values) == [("w1", "payload", 4.0), ("w2", "payload", 4.0)]


def test_event_trigger_chain(env):
    a, b, c = env.event(), env.event(), env.event()
    a.callbacks.append(b.trigger)
    b.callbacks.append(c.trigger)
    a.succeed("v")
    env.run()
    assert c.value == "v"


def test_condition_with_process_members(env):
    def worker(env, d):
        yield env.timeout(d)
        return d

    done = []

    def boss(env):
        workers = [env.process(worker(env, d)) for d in (3, 1, 2)]
        result = yield AllOf(env, workers)
        done.append(sorted(result.values()))

    env.process(boss(env))
    env.run()
    assert done == [[1, 2, 3]]


def test_any_of_with_failed_member_defused_by_waiter(env):
    caught = []

    def failer(env):
        yield env.timeout(2)
        raise RuntimeError("worker died")

    def boss(env):
        f = env.process(failer(env))
        t = env.timeout(10)
        try:
            yield AnyOf(env, [f, t])
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(boss(env))
    env.run()
    assert caught == ["worker died"]


def test_timeout_zero_fires_same_timestep_after_pending(env):
    order = []

    def proc(env):
        order.append("start")
        yield env.timeout(0)
        order.append("after zero-timeout")

    env.process(proc(env))
    env.run()
    assert order == ["start", "after zero-timeout"]


def test_interleaving_is_deterministic():
    def run_once():
        env = Environment()
        log = []

        def p(env, name, d):
            while env.now < 50:
                yield env.timeout(d)
                log.append((name, env.now))

        env.process(p(env, "a", 7))
        env.process(p(env, "b", 5))
        env.process(p(env, "c", 5))
        env.run(until=60)
        return log

    assert run_once() == run_once()


def test_generator_return_before_first_yield(env):
    def instant(env):
        if True:
            return 5
        yield  # pragma: no cover

    p = env.process(instant(env))
    assert env.run(until=p) == 5
