"""Tests for kernel event tracing (EventLog, EventCounter)."""

from repro.des import Environment, EventCounter, EventLog, event_kind
from repro.des.events import Timeout


def model(env, ticks=5):
    for _ in range(ticks):
        yield env.timeout(10.0)


def test_event_kind_classification(env):
    t = env.timeout(1)
    assert event_kind(t) == "timeout"
    p = env.process(model(env, 1))
    assert event_kind(p) == "process"
    assert event_kind(env.event()) == "event"


def test_event_log_records_processed_events(env):
    log = EventLog(env)
    with log:
        env.process(model(env, 5))
        env.run()
    # 5 timeouts + 1 initialize + 1 process completion.
    assert log.summary()["timeout"] == 5
    assert log.summary()["process"] == 1
    assert len(log) >= 7


def test_event_log_times_monotonic(env):
    with EventLog(env) as log:
        env.process(model(env, 4))
        env.run()
    times = [e.time for e in log.entries]
    assert times == sorted(times)


def test_event_log_limit_drops_oldest(env):
    log = EventLog(env, limit=3)
    with log:
        env.process(model(env, 10))
        env.run()
    assert len(log) == 3
    assert log.dropped > 0
    # Retained entries are the latest ones.
    assert log.entries[-1].time >= log.entries[0].time


def test_event_log_detach_stops_recording(env):
    log = EventLog(env).attach()
    env.process(model(env, 2))
    env.run(until=15.0)
    count_attached = len(log)
    log.detach()
    env.run()
    assert len(log) == count_attached


def test_event_log_queries(env):
    with EventLog(env) as log:
        env.process(model(env, 5))
        env.run()
    assert all(e.kind == "timeout" for e in log.of_kind("timeout"))
    mid = log.between(15.0, 35.0)
    assert all(15.0 <= e.time <= 35.0 for e in mid)


def test_event_counter(env):
    counter = EventCounter(env)
    with counter:
        env.process(model(env, 8))
        env.run()
    assert counter.counts["timeout"] == 8
    assert counter.total >= 9
    assert counter.events_per_sim_time() > 0


def test_counter_density_nan_without_span(env):
    counter = EventCounter(env)
    assert counter.events_per_sim_time() != counter.events_per_sim_time()


def test_tracers_do_not_disturb_simulation(env):
    results = []

    def run(traced):
        e = Environment()
        if traced:
            EventLog(e).attach()
        done = []

        def proc(e):
            yield e.timeout(3)
            done.append(e.now)

        e.process(proc(e))
        e.run()
        results.append(done[0])

    run(False)
    run(True)
    assert results[0] == results[1]


def test_process_names_recorded(env):
    with EventLog(env) as log:
        env.process(model(env, 1), name="my-proc")
        env.run()
    names = {e.name for e in log.of_kind("process")}
    assert "my-proc" in names
