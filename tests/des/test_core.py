"""Tests for the DES environment: clock, scheduling, run modes."""

import pytest

from repro.des import Environment, EmptySchedule, Event


def test_initial_time_default():
    assert Environment().now == 0.0


def test_initial_time_custom():
    assert Environment(initial_time=42.5).now == 42.5


def test_timeout_advances_clock(env):
    log = []

    def proc(env):
        yield env.timeout(10)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [10.0, 12.5]


def test_run_until_time_advances_clock_exactly(env):
    def noop(env):
        yield env.timeout(1)

    env.process(noop(env))
    env.run(until=100.0)
    assert env.now == 100.0


def test_run_until_must_not_be_in_past(env):
    with pytest.raises(ValueError):
        env.run(until=-1.0)


def test_run_until_now_is_noop(env):
    """``until == now`` returns immediately (SimPy semantics)."""
    assert env.run(until=0.0) is None
    assert env.now == 0.0

    def worker(env):
        yield env.timeout(5.0)

    env.process(worker(env))
    env.run(until=5.0)
    # The queue still holds events at t=5; an until==now run must not
    # process them.
    pending = len(env)
    assert env.run(until=5.0) is None
    assert env.now == 5.0
    assert len(env) == pending


def test_run_until_event_returns_value(env):
    def proc(env):
        yield env.timeout(5)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 5.0


def test_run_until_already_processed_event(env):
    ev = env.event()
    ev.succeed("x")
    env.run()
    assert env.run(until=ev) == "x"


def test_run_empty_schedule_returns_none(env):
    assert env.run() is None


def test_step_empty_raises(env):
    with pytest.raises(EmptySchedule):
        env.step()


def test_run_until_event_never_triggered_raises(env):
    ev = env.event()

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="until event was not triggered"):
        env.run(until=ev)


def test_peek_returns_next_event_time(env):
    env.timeout(7.0)
    env.timeout(3.0)
    assert env.peek() == 3.0


def test_peek_empty_is_infinite(env):
    assert env.peek() == float("inf")


def test_len_counts_scheduled_events(env):
    env.timeout(1)
    env.timeout(2)
    assert len(env) == 2


def test_events_at_same_time_fifo_order(env):
    log = []

    def proc(env, name):
        yield env.timeout(10)
        log.append(name)

    for name in "abc":
        env.process(proc(env, name))
    env.run()
    assert log == ["a", "b", "c"]


def test_negative_delay_rejected(env):
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_clock_is_monotonic_across_many_events(env):
    seen = []

    def proc(env, d):
        yield env.timeout(d)
        seen.append(env.now)

    for d in (5, 1, 9, 3, 3, 7, 0):
        env.process(proc(env, d))
    env.run()
    assert seen == sorted(seen)


def test_active_process_visible_during_resume(env):
    captured = []

    def proc(env):
        captured.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    assert captured == [p]
    assert env.active_process is None


def test_failed_event_without_waiter_crashes_simulation(env):
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_failed_event_with_waiter_is_defused(env):
    caught = []

    def proc(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = env.event()
    env.process(proc(env, ev))
    ev.fail(RuntimeError("handled"))
    env.run()
    assert caught == ["handled"]
