"""Tests for Resource, PriorityResource, and PreemptiveResource."""

import pytest

from repro.des import (
    Interrupt,
    Preempted,
    PreemptiveResource,
    PriorityResource,
    Resource,
)


def test_capacity_validation(env):
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_fifo_service_order(env):
    res = Resource(env, capacity=1)
    log = []

    def user(env, name, hold):
        with res.request() as req:
            yield req
            log.append((name, env.now))
            yield env.timeout(hold)

    for name, hold in (("a", 3), ("b", 2), ("c", 1)):
        env.process(user(env, name, hold))
    env.run()
    assert log == [("a", 0.0), ("b", 3.0), ("c", 5.0)]


def test_capacity_two_serves_in_parallel(env):
    res = Resource(env, capacity=2)
    done = []

    def user(env, name):
        with res.request() as req:
            yield req
            yield env.timeout(10)
            done.append((name, env.now))

    for n in "abc":
        env.process(user(env, n))
    env.run()
    assert done == [("a", 10.0), ("b", 10.0), ("c", 20.0)]


def test_count_and_queue(env):
    res = Resource(env, capacity=1)

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(100)

    def waiter(env):
        with res.request() as req:
            yield req

    env.process(holder(env))
    env.process(waiter(env))
    env.run(until=1.0)
    assert res.count == 1
    assert len(res.queue) == 1


def test_release_via_context_manager(env):
    res = Resource(env, capacity=1)

    def user(env):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    env.process(user(env))
    env.run()
    assert res.count == 0


def test_cancel_pending_request(env):
    res = Resource(env, capacity=1)
    got_second = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env):
        req = res.request()
        yield env.timeout(2)  # give up before service
        req.cancel()

    def patient(env):
        yield env.timeout(3)
        with res.request() as req:
            yield req
            got_second.append(env.now)

    env.process(holder(env))
    env.process(impatient(env))
    env.process(patient(env))
    env.run()
    # The cancelled request must not absorb the release at t=10.
    assert got_second == [10.0]


def test_release_of_non_user_raises(env):
    res = Resource(env, capacity=1)

    def user(env):
        req = res.request()
        yield req
        res.release(req)
        with pytest.raises(RuntimeError):
            res.release(req)

    env.process(user(env))
    env.run()


def test_priority_resource_orders_by_priority(env):
    res = PriorityResource(env, capacity=1)
    log = []

    def holder(env):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(10)

    def user(env, name, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            log.append(name)
            yield env.timeout(1)

    env.process(holder(env))
    env.process(user(env, "low", 5, 1))
    env.process(user(env, "high", 1, 2))  # arrives later, higher priority
    env.run()
    assert log == ["high", "low"]


def test_preemptive_resource_evicts_lower_priority(env):
    cpu = PreemptiveResource(env, capacity=1)
    trace = []

    def low(env):
        with cpu.request(priority=5) as req:
            yield req
            try:
                yield env.timeout(100)
                trace.append("low finished")
            except Interrupt as i:
                assert isinstance(i.cause, Preempted)
                trace.append(("low preempted at", env.now, i.cause.usage_since))

    def high(env):
        yield env.timeout(10)
        with cpu.request(priority=1, preempt=True) as req:
            yield req
            trace.append(("high got", env.now))
            yield env.timeout(5)

    env.process(low(env))
    env.process(high(env))
    env.run()
    assert trace == [("low preempted at", 10.0, 0.0), ("high got", 10.0)]


def test_preempt_false_waits_instead(env):
    cpu = PreemptiveResource(env, capacity=1)
    log = []

    def low(env):
        with cpu.request(priority=5) as req:
            yield req
            yield env.timeout(20)
            log.append(("low done", env.now))

    def high(env):
        yield env.timeout(1)
        with cpu.request(priority=1, preempt=False) as req:
            yield req
            log.append(("high got", env.now))

    env.process(low(env))
    env.process(high(env))
    env.run()
    assert log == [("low done", 20.0), ("high got", 20.0)]


def test_equal_priority_does_not_preempt(env):
    cpu = PreemptiveResource(env, capacity=1)
    log = []

    def first(env):
        with cpu.request(priority=3) as req:
            yield req
            yield env.timeout(10)
            log.append("first done")

    def second(env):
        yield env.timeout(1)
        with cpu.request(priority=3, preempt=True) as req:
            yield req
            log.append("second got")

    env.process(first(env))
    env.process(second(env))
    env.run()
    assert log == ["first done", "second got"]
