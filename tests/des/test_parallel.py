"""Partitioned parallel kernel: equivalence, fallback, fault recovery."""

import pytest

from repro.experiments.engine import CellCache, ExperimentEngine
from repro.experiments.resilience import (
    DEFAULT_TRANSIENT,
    ResilientEngine,
    RetryPolicy,
)
from repro.des.parallel import LPWorkerLost, parallel_simulate
from repro.rocc import Architecture, ForwardingTopology, SimulationConfig, simulate
from repro.rocc.config import NetworkMode
from repro.verify.differential import diff_results

#: Fields whose sequential values are float sums accumulated in one
#: global order; partitioned runs re-associate them (per-LP partial
#: sums), so they may differ in the last ulp.
ULP = ("network_utilization", "pd_network_utilization", "pipe_blocked_time")
IGNORE = ULP + ("observability",)


def _assert_equivalent(seq, par):
    assert diff_results(seq, par, ignore=IGNORE) == []
    for f in ULP:
        a, b = getattr(seq, f), getattr(par, f)
        assert a == pytest.approx(b, rel=1e-9), f


@pytest.fixture(scope="module")
def mpp_config():
    return SimulationConfig(
        architecture=Architecture.MPP, nodes=8, duration=250_000.0,
        app_processes_per_node=2, seed=13,
    )


@pytest.fixture(scope="module")
def mpp_sequential(mpp_config):
    return simulate(mpp_config)


def test_two_lp_equivalence(mpp_config, mpp_sequential):
    _assert_equivalent(mpp_sequential, simulate(mpp_config, lp_workers=2))


def test_uneven_partition_equivalence(mpp_config, mpp_sequential):
    # 8 nodes over 3 LPs: ranges of 3/3/2 — exercises the uneven split.
    _assert_equivalent(mpp_sequential, simulate(mpp_config, lp_workers=3))


def test_now_cf_with_warmup_equivalence():
    cfg = SimulationConfig(
        architecture=Architecture.NOW, nodes=6,
        network_mode=NetworkMode.CONTENTION_FREE,
        duration=200_000.0, warmup=40_000.0, seed=21,
    )
    _assert_equivalent(simulate(cfg), simulate(cfg, lp_workers=2))


def test_parallel_run_is_replayable(mpp_config):
    # The coordinator's injection order is wall-clock independent, so a
    # parallel run replays bit-identically (including the ulp fields).
    a = simulate(mpp_config, lp_workers=2)
    b = simulate(mpp_config, lp_workers=2)
    assert diff_results(a, b, ignore=("observability",)) == []


def test_single_lp_request_stays_sequential(mpp_config, mpp_sequential):
    out = simulate(mpp_config, lp_workers=1)
    assert diff_results(mpp_sequential, out, ignore=("observability",)) == []
    assert "lp_workers" not in out.observability


def test_env_knob_enables_parallelism(mpp_config, monkeypatch):
    monkeypatch.setenv("REPRO_DES_PARALLEL", "2")
    out = simulate(mpp_config)
    assert out.observability.get("lp_workers") == 2


def test_ineligible_config_falls_back(mpp_sequential, mpp_config):
    treed = mpp_config.with_(forwarding=ForwardingTopology.TREE)
    seq = simulate(treed)
    par = simulate(treed, lp_workers=4)
    assert diff_results(seq, par, ignore=("observability",)) == []
    assert "lp_workers" not in par.observability


def test_window_env_knob(mpp_config, monkeypatch):
    monkeypatch.setenv("REPRO_DES_LP_WINDOW", "50000")
    out = simulate(mpp_config, lp_workers=2)
    # 250 ms over 50 ms windows: 5 windows per LP.
    assert out.observability["lp_windows"] == 10
    seq = simulate(mpp_config)
    _assert_equivalent(seq, out)


def test_parallel_observability_metadata(mpp_config):
    out = simulate(mpp_config, lp_workers=2)
    obs = out.observability
    assert obs["lp_workers"] == 2
    assert obs["lookahead_us"] == 0.0  # exponential network costs
    assert obs["lp_sync_waits"] >= 1
    assert obs["null_messages"] >= 0


# ---------------------------------------------------------------------------
# Fault injection: a SIGKILLed LP worker is retried cleanly
# ---------------------------------------------------------------------------


def test_lp_worker_lost_is_transient():
    assert "LPWorkerLost" in DEFAULT_TRANSIENT


def test_killed_lp_worker_raises(mpp_config, tmp_path, monkeypatch):
    marker = tmp_path / "lp-kill"
    monkeypatch.setenv("REPRO_CHAOS_LP_KILL", str(marker))
    with pytest.raises(LPWorkerLost):
        parallel_simulate(mpp_config, 2)
    assert marker.exists()


def test_resilient_engine_retries_killed_lp_worker(
    mpp_config, mpp_sequential, tmp_path, monkeypatch
):
    """An LP worker SIGKILLed mid-window: the cell fails with
    LPWorkerLost, the resilient engine retries, and the second attempt
    (chaos marker present) reproduces the sequential results."""
    marker = tmp_path / "lp-kill-retried"
    monkeypatch.setenv("REPRO_CHAOS_LP_KILL", str(marker))
    with ResilientEngine(
        workers=1,
        cache=CellCache(enabled=False),
        retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        lp_workers=2,
    ) as engine:
        (result,) = engine.run_cells([mpp_config])
    assert engine.stats.retries == 1
    assert marker.exists()
    _assert_equivalent(mpp_sequential, result)


def test_engine_auto_stays_sequential_for_small_cells(
    mpp_config, mpp_sequential
):
    with ExperimentEngine(
        workers=1, cache=CellCache(enabled=False), lp_workers="auto"
    ) as engine:
        (result,) = engine.run_cells([mpp_config])
    # 8 nodes is far below the auto threshold: bit-identical everywhere.
    assert diff_results(mpp_sequential, result,
                        ignore=("observability",)) == []


def test_engine_fingerprint_separates_parallel_results(mpp_config):
    seq_engine = ExperimentEngine(workers=1, cache=CellCache(enabled=True))
    par_engine = ExperimentEngine(
        workers=1, cache=CellCache(enabled=True), lp_workers=4
    )
    try:
        a = seq_engine._fingerprint(mpp_config, False)
        b = par_engine._fingerprint(mpp_config, False)
        assert a != b
    finally:
        seq_engine.close()
        par_engine.close()
