"""Property tests for the kernel's event tracing (repro.des.tracing).

For any workload and any retention ``limit`` — including the degenerate
``limit=0`` — an :class:`EventLog` must satisfy:

* retained entries are time-monotone (the kernel processes events in
  time order, and the log preserves it);
* ``dropped + len(entries)`` equals the number of events processed
  (counted independently by an :class:`EventCounter`);
* at most ``limit`` entries are retained.

Both kernel paths are exercised: the fast path (holds, event pooling)
and the generic loop (``REPRO_DES_FASTPATH=0``).  The knob is read per
:class:`Environment`, so it is flipped around each construction.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment
from repro.des.tracing import EventCounter, EventLog


@contextmanager
def _fastpath(enabled: bool):
    # Hypothesis shares one example context across its shrink loop, so
    # monkeypatch fixtures don't compose with @given; set the variable
    # directly and restore it whatever happens.
    prev = os.environ.get("REPRO_DES_FASTPATH")
    os.environ["REPRO_DES_FASTPATH"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop("REPRO_DES_FASTPATH", None)
        else:
            os.environ["REPRO_DES_FASTPATH"] = prev


def _workload(env: Environment, delays_per_proc) -> None:
    def proc(delays):
        for d in delays:
            yield env.hold(d)

    for delays in delays_per_proc:
        env.process(proc(delays))


@given(
    delays_per_proc=st.lists(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=8,
        ),
        min_size=1, max_size=5,
    ),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=30)),
    fastpath=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_eventlog_conservation_and_monotonicity(
    delays_per_proc, limit, fastpath
) -> None:
    with _fastpath(fastpath):
        env = Environment()
        _workload(env, delays_per_proc)
        log = EventLog(env, limit=limit)
        counter = EventCounter(env)
        with log, counter:
            env.run(until=10_000.0)

    # Conservation: every processed event was retained or dropped.
    assert log.dropped + len(log.entries) == counter.total

    # Retention bound.
    if limit is not None:
        assert len(log.entries) <= limit

    # Monotone time.
    times = [e.time for e in log.entries]
    assert times == sorted(times)

    # The retained tail is exactly the most recent events: nothing can
    # be retained from before the drop horizon.
    if log.dropped and log.entries:
        assert log.entries[0].time >= 0.0


def test_eventlog_limit_zero_drops_everything() -> None:
    """limit=0 retains nothing and must not crash (regression: the
    bounded branch used to pop from the empty entries list)."""
    env = Environment()
    _workload(env, [[1.0, 2.0, 3.0]])
    log = EventLog(env, limit=0)
    with log:
        env.run(until=100.0)
    assert log.entries == []
    assert log.dropped > 0


def test_eventlog_equivalent_across_kernel_paths() -> None:
    """The same workload yields the same trace under both kernels."""
    traces = {}
    for fastpath in (True, False):
        with _fastpath(fastpath):
            env = Environment()
            _workload(env, [[5.0, 1.0], [2.0, 2.0, 2.0]])
            log = EventLog(env)
            with log:
                env.run(until=1_000.0)
        traces[fastpath] = [(e.time, e.kind) for e in log.entries]
    assert traces[True] == traces[False]
