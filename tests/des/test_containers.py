"""Tests for Container (level-based resource)."""

import pytest

from repro.des import Container


def test_validation(env):
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=11)


def test_initial_level(env):
    c = Container(env, capacity=10, init=4)
    assert c.level == 4


def test_put_and_get(env):
    c = Container(env, capacity=100)

    def proc(env):
        yield c.put(30)
        yield c.get(10)

    env.process(proc(env))
    env.run()
    assert c.level == 20


def test_get_blocks_until_available(env):
    c = Container(env, capacity=100)
    log = []

    def getter(env):
        yield c.get(50)
        log.append(env.now)

    def putter(env):
        yield env.timeout(5)
        yield c.put(30)
        yield env.timeout(5)
        yield c.put(30)

    env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert log == [10.0]
    assert c.level == 10


def test_put_blocks_at_capacity(env):
    c = Container(env, capacity=10, init=8)
    log = []

    def putter(env):
        yield c.put(5)
        log.append(env.now)

    def getter(env):
        yield env.timeout(3)
        yield c.get(4)

    env.process(putter(env))
    env.process(getter(env))
    env.run()
    assert log == [3.0]
    assert c.level == 9


def test_nonpositive_amount_rejected(env):
    c = Container(env, capacity=10)
    with pytest.raises(ValueError):
        c.put(0)
    with pytest.raises(ValueError):
        c.get(-1)


def test_cancel_pending_get(env):
    c = Container(env, capacity=10)

    def proc(env):
        get = c.get(5)
        yield env.timeout(1)
        get.cancel()

    env.process(proc(env))
    env.run()
    assert not c._get_waiters
