"""Tests for kernel failure paths: interrupts on dead processes,
failure propagation through conditions, StopSimulation with failures."""

import pytest

from repro.des import Environment, Interrupt
from repro.des.events import AllOf, AnyOf
from repro.des.exceptions import StopSimulation


class Boom(Exception):
    pass


# ----------------------------------------------------------------------
# Interrupting terminated processes
# ----------------------------------------------------------------------
def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    proc = env.process(quick(env))
    env.run(until=5.0)
    assert not proc.is_alive
    with pytest.raises(RuntimeError, match="terminated"):
        proc.interrupt("too late")


def test_interrupt_delivered_then_process_dies_before_delivery():
    """An interrupt scheduled against a process that terminates in the
    same instant is silently discarded, not an error."""
    env = Environment()

    def victim(env):
        yield env.timeout(1.0)

    def killer(env, proc):
        yield env.timeout(1.0)  # same tick as the victim's wakeup
        if proc.is_alive:
            proc.interrupt("race")

    proc = env.process(victim(env))
    env.process(killer(env, proc))
    env.run(until=5.0)  # must not raise
    assert not proc.is_alive


def test_self_interrupt_rejected():
    env = Environment()

    def selfish(env):
        env.active_process.interrupt("me")
        yield env.timeout(1.0)

    env.process(selfish(env))
    # The RuntimeError crashes the (unwaited-on) process, which makes it
    # an unhandled failure when the process event is processed.
    with pytest.raises(RuntimeError, match="interrupt itself"):
        env.run(until=5.0)


def test_interrupt_cause_round_trip():
    env = Environment()
    seen = {}

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            seen["cause"] = exc.cause

    proc = env.process(sleeper(env))

    def poker(env):
        yield env.timeout(1.0)
        proc.interrupt({"reason": "test"})

    env.process(poker(env))
    env.run(until=10.0)
    assert seen["cause"] == {"reason": "test"}


# ----------------------------------------------------------------------
# Failure propagation through conditions
# ----------------------------------------------------------------------
def test_allof_propagates_failure_to_waiter():
    env = Environment()
    bad = env.event()
    good = env.timeout(5.0)
    caught = {}

    def waiter(env):
        try:
            yield AllOf(env, [good, bad])
        except Boom as exc:
            caught["exc"] = exc

    env.process(waiter(env))

    def failer(env):
        yield env.timeout(1.0)
        bad.fail(Boom("allof"))

    env.process(failer(env))
    env.run(until=10.0)
    assert isinstance(caught["exc"], Boom)


def test_anyof_propagates_failure_even_with_pending_success():
    env = Environment()
    bad = env.event()
    caught = {}

    def waiter(env):
        try:
            yield AnyOf(env, [env.timeout(50.0), bad])
        except Boom as exc:
            caught["exc"] = exc

    env.process(waiter(env))

    def failer(env):
        yield env.timeout(1.0)
        bad.fail(Boom("anyof"))

    env.process(failer(env))
    env.run(until=100.0)
    assert isinstance(caught["exc"], Boom)


def test_late_failure_after_condition_triggered_is_defused():
    """A failure arriving after an AnyOf already fired must be defused —
    the waiter moved on; the simulation must not crash."""
    env = Environment()
    bad = env.event()
    done = {}

    def waiter(env):
        yield AnyOf(env, [env.timeout(1.0), bad])
        done["ok"] = True
        yield env.timeout(50.0)

    env.process(waiter(env))

    def failer(env):
        yield env.timeout(5.0)  # strictly after the condition fired
        bad.fail(Boom("late"))

    env.process(failer(env))
    env.run(until=100.0)  # must not raise
    assert done["ok"]
    assert bad.defused


def test_unhandled_failed_event_crashes_simulation():
    env = Environment()
    bad = env.event()

    def failer(env):
        yield env.timeout(1.0)
        bad.fail(Boom("nobody listens"))

    env.process(failer(env))
    with pytest.raises(Boom):
        env.run(until=10.0)


# ----------------------------------------------------------------------
# StopSimulation.callback with failed events
# ----------------------------------------------------------------------
def test_stop_simulation_callback_reraises_failure():
    event = type("E", (), {"ok": False, "value": Boom("stop-fail")})()
    with pytest.raises(Boom):
        StopSimulation.callback(event)


def test_stop_simulation_callback_success_carries_value():
    event = type("E", (), {"ok": True, "value": 42})()
    with pytest.raises(StopSimulation) as excinfo:
        StopSimulation.callback(event)
    assert excinfo.value.args[0] == 42


def test_run_until_failed_event_reraises():
    env = Environment()
    target = env.event()

    def failer(env):
        yield env.timeout(1.0)
        target.fail(Boom("until"))

    env.process(failer(env))
    with pytest.raises(Boom):
        env.run(until=target)


def test_run_until_succeeded_event_returns_value():
    env = Environment()
    target = env.event()

    def setter(env):
        yield env.timeout(1.0)
        target.succeed("payload")

    env.process(setter(env))
    assert env.run(until=target) == "payload"
