"""Tests for the Environment.run watchdog (SimulationStalled)."""

import pytest

from repro.des import Environment, SimulationStalled


def _spinner(env):
    while True:
        yield env.timeout(0)


def test_max_events_raises_and_names_blocked_process():
    env = Environment()
    env.process(_spinner(env), name="spinner")
    with pytest.raises(SimulationStalled) as excinfo:
        env.run(until=10.0, max_events=1000)
    exc = excinfo.value
    assert "spinner" in exc.blocked
    assert "spinner" in str(exc)
    assert exc.events_processed == 1000
    assert exc.now == 0.0  # zero-delay loop never advances the clock


def test_max_events_is_not_triggered_by_healthy_run():
    env = Environment()

    def worker(env):
        for _ in range(5):
            yield env.timeout(1.0)

    env.process(worker(env), name="worker")
    env.run(until=10.0, max_events=100_000)
    assert env.now == 10.0


def test_max_wall_seconds_aborts_livelock():
    env = Environment()
    env.process(_spinner(env), name="hog")
    with pytest.raises(SimulationStalled) as excinfo:
        env.run(until=10.0, max_wall_seconds=0.05)
    assert excinfo.value.events_processed > 0
    assert "max_wall_seconds" in str(excinfo.value)


def test_watchdog_parameter_validation():
    env = Environment()
    with pytest.raises(ValueError):
        env.run(until=1.0, max_events=0)
    with pytest.raises(ValueError):
        env.run(until=1.0, max_wall_seconds=0.0)


def test_watchdog_off_by_default():
    env = Environment()
    env.process((env.timeout(1.0) for _ in range(1)), name="one")
    env.run(until=5.0)
    assert env.now == 5.0


def test_stalled_through_simulation_config():
    """SimulationConfig.max_events flows through to the kernel watchdog."""
    from repro.rocc import SimulationConfig, simulate

    cfg = SimulationConfig(
        nodes=1,
        duration=1_000_000.0,
        include_pvmd=False,
        include_other=False,
        max_events=50,
    )
    with pytest.raises(SimulationStalled):
        simulate(cfg)
    # A sane budget completes fine.
    ok = simulate(cfg.with_(max_events=5_000_000))
    assert ok.samples_received > 0
