"""Tests for events: life cycle, values, conditions, operators."""

import pytest

from repro.des import AllOf, AnyOf, Environment, Event


def test_event_starts_untriggered(env):
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed


def test_value_unavailable_before_trigger(env):
    ev = env.event()
    with pytest.raises(AttributeError):
        _ = ev.value
    with pytest.raises(AttributeError):
        _ = ev.ok


def test_succeed_sets_value(env):
    ev = env.event()
    ev.succeed(123)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 123


def test_double_succeed_rejected(env):
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()


def test_fail_requires_exception(env):
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_callbacks_run_on_processing(env):
    ev = env.event()
    hits = []
    ev.callbacks.append(lambda e: hits.append(e.value))
    ev.succeed("v")
    env.run()
    assert hits == ["v"]
    assert ev.processed


def test_timeout_carries_value(env):
    result = []

    def proc(env):
        v = yield env.timeout(3, value="tick")
        result.append(v)

    env.process(proc(env))
    env.run()
    assert result == ["tick"]


def test_trigger_copies_state(env):
    src = env.event()
    dst = env.event()
    src.callbacks.append(dst.trigger)
    src.succeed(7)
    env.run()
    assert dst.value == 7


def test_all_of_waits_for_every_event(env):
    order = []

    def waiter(env, events):
        result = yield env.all_of(events)
        order.append(("done", env.now, len(result.events)))

    t1, t2, t3 = env.timeout(1), env.timeout(5), env.timeout(3)
    env.process(waiter(env, [t1, t2, t3]))
    env.run()
    assert order == [("done", 5.0, 3)]


def test_any_of_fires_on_first(env):
    got = []

    def waiter(env, events):
        result = yield env.any_of(events)
        got.append((env.now, list(result.values())))

    t1, t2 = env.timeout(4, value="a"), env.timeout(2, value="b")
    env.process(waiter(env, [t1, t2]))
    env.run()
    assert got == [(2.0, ["b"])]


def test_and_operator(env):
    done = []

    def proc(env):
        yield env.timeout(1) & env.timeout(6)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [6.0]


def test_or_operator(env):
    done = []

    def proc(env):
        yield env.timeout(9) | env.timeout(2)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [2.0]


def test_empty_all_of_fires_immediately(env):
    done = []

    def proc(env):
        yield AllOf(env, [])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_empty_any_of_fires_immediately(env):
    done = []

    def proc(env):
        yield AnyOf(env, [])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_condition_value_contains_fired_events(env):
    seen = {}

    def proc(env):
        t1 = env.timeout(1, value="x")
        t2 = env.timeout(1, value="y")
        result = yield t1 & t2
        seen["t1"] = result[t1]
        seen["t2"] = result[t2]

    env.process(proc(env))
    env.run()
    assert seen == {"t1": "x", "t2": "y"}


def test_condition_propagates_failure(env):
    caught = []

    def proc(env):
        bad = Event(env)
        good = env.timeout(10)
        cond = good & bad
        bad.fail(ValueError("broken"))
        try:
            yield cond
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    env.run()
    assert caught == ["broken"]


def test_mixing_environments_rejected(env):
    other = Environment()
    with pytest.raises(ValueError):
        AllOf(env, [env.timeout(1), other.timeout(1)])


def test_condition_over_already_processed_events(env):
    t = env.timeout(1, value="v")
    env.run()  # t is processed now
    done = []

    def proc(env):
        result = yield AllOf(env, [t])
        done.append(result[t])

    env.process(proc(env))
    env.run()
    assert done == ["v"]
