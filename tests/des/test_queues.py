"""Pluggable kernel schedulers: pop-order identity with the heap oracle.

The schedule key ``(time, priority, seq)`` is a total order, so every
correct scheduler must pop the exact same sequence as ``heapq``.  The
fuzz here drives each implementation against a shadow heap through
adversarial interleavings; the width/multiple grid deliberately lands
event times *exactly* on bucket-window edges computed in float
arithmetic — the calendar-queue misrouting class where ``int(t/width)``
floors into the window just served and the entry is shelved for a whole
calendar lap.
"""

import heapq
import random
from math import inf

import pytest

from repro.des import Environment
from repro.des.queues import (
    DEFAULT_QUEUE,
    SCHEDULERS,
    AutoScheduler,
    CalendarQueue,
    TieBreakingHeap,
    make_scheduler,
    scheduler_name_from_env,
)


def _drive(sched, rng, ops, gaps):
    """Random push/pop interleaving mirrored onto a shadow heap.

    Pushes respect kernel monotonicity (never below the time of the
    last pop); pop results must match the shadow exactly.
    """
    shadow = []
    seq = 0
    now = 0.0
    for _ in range(ops):
        if shadow and rng.random() < 0.45:
            expected = heapq.heappop(shadow)
            got = sched.pop()
            assert got == expected
            if expected[0] != inf:
                now = expected[0]
        else:
            gap = gaps(rng)
            t = inf if gap == inf else now + gap
            entry = (t, rng.choice((0, 1)), seq, None)
            seq += 1
            heapq.heappush(shadow, entry)
            sched.push(entry)
        assert len(sched) == len(shadow)
    while shadow:
        assert sched.pop() == heapq.heappop(shadow)
    with pytest.raises(IndexError):
        sched.pop()


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_pop_order_matches_heap_oracle(name):
    def gaps(rng):
        return rng.choice((
            0.0, 0.0, 1.0, 4.545454545454546, 7.25,
            rng.expovariate(0.05), rng.random() * 1e6, inf,
        ))

    for seed in range(20):
        _drive(SCHEDULERS[name](), random.Random(seed), 500, gaps)


@pytest.mark.parametrize("width", [1.0, 100.0 / 22.0, 0.1, 3.0, 1e4])
def test_calendar_exact_window_edges(width):
    """Times sitting exactly on ``k * width`` float products.

    Regression for the horizon-edge misroute: with the window ``k``
    defined as ``[k*width, (k+1)*width)``, a push at exactly the
    current horizon must land in the *next* window, not floor into the
    one just served.
    """
    rng = random.Random(1234)

    def gaps(rng):
        # Steps of exact window multiples keep landing the schedule on
        # k*width edges as `now` advances.
        return rng.choice((0.0, width, width, 2.0 * width, width * 0.5))

    for seed in range(10):
        _drive(CalendarQueue(width=width), random.Random(seed), 400, gaps)

    # Direct edge shape: activate a window, then push exactly at its end.
    cq = CalendarQueue(width=width)
    cq.push((width * 31.0, 0, 0, None))
    assert cq.pop()[0] == width * 31.0   # horizon is now width * 32
    cq.push((width * 48.0, 0, 1, None))  # far entry forcing a lap/jump
    cq.push((width * 32.0, 0, 2, None))  # exactly on the horizon
    assert cq.pop()[0] == width * 32.0
    assert cq.pop()[0] == width * 48.0


def test_calendar_resize_keeps_order():
    """Enough churn to force occupancy resizes and width adaptation."""
    def gaps(rng):
        return rng.expovariate(1.0) * rng.choice((1e-3, 1.0, 1e3))

    for seed in range(5):
        sched = CalendarQueue()
        _drive(sched, random.Random(seed), 3000, gaps)
        assert sched.resizes > 0


def test_stats_shape_and_counts():
    for name, cls in SCHEDULERS.items():
        sched = cls()
        for i in range(10):
            sched.push((float(i), 0, i, None))
        for _ in range(4):
            sched.pop()
        stats = sched.stats()
        if name == "auto":
            # The facade names the implementation currently serving.
            assert stats["impl"] == "auto(heap)"
        else:
            assert stats["impl"] == name
        assert stats["enqueues"] == 10
        assert stats["dequeues"] == 4
        assert set(stats) == {
            "impl", "enqueues", "dequeues", "resizes", "max_bucket",
        }


def test_smallest_and_peek():
    for cls in SCHEDULERS.values():
        sched = cls()
        assert sched.peek_time() == inf
        for i, t in enumerate((5.0, 1.0, 3.0, inf)):
            sched.push((t, 0, i, None))
        assert sched.peek_time() == 1.0
        assert [e[0] for e in sched.smallest(3)] == [1.0, 3.0, 5.0]


def test_auto_promotes_once_and_never_demotes():
    """The auto scheduler's promotion is a one-way hysteresis latch.

    Drive the schedule depth across the threshold, drain it back to
    (near) empty, and cross the threshold again: exactly one promotion
    happens, and the serving implementation stays the calendar even
    when the schedule is empty again.
    """
    sched = AutoScheduler(promote_at=32)
    assert sched.stats()["impl"] == "auto(heap)"
    seq = 0
    for i in range(40):  # cross the threshold
        sched.push((float(i), 0, seq, None)); seq += 1
    assert sched.promotions == 1
    assert sched.stats()["impl"] == "auto(calendar)"
    while len(sched):  # drain to empty: must NOT demote
        sched.pop()
    assert sched.stats()["impl"] == "auto(calendar)"
    for i in range(40):  # re-cross: no second promotion
        sched.push((100.0 + i, 0, seq, None)); seq += 1
    assert sched.promotions == 1
    # Counter continuity across the promotion.
    stats = sched.stats()
    assert stats["enqueues"] == 80
    assert stats["dequeues"] == 40


def test_auto_promotion_preserves_pop_order():
    """Pop order across the promotion boundary equals the heap oracle.

    The interleaving is tuned so promotion fires mid-stream with a
    partially drained schedule — the exact state the latch hands from
    the heap to the calendar.
    """
    def gaps(rng):
        return rng.choice((0.0, 1.0, rng.expovariate(0.01), inf))

    for seed in range(20):
        sched = AutoScheduler(promote_at=24)
        _drive(sched, random.Random(seed), 600, gaps)
        assert sched.promotions == 1, "threshold never crossed: weak test"


def test_auto_rebinds_environment_push():
    """After promotion the environment enqueues via the calendar
    directly — the delegation tax is paid only while shallow."""
    env = Environment()
    sched = env.scheduler
    if sched.name != "auto":
        pytest.skip("default queue overridden")
    assert env._push.__self__ is sched
    for i in range(sched.promote_at + 8):
        env.schedule(Environment.event(env), delay=float(i))
    assert sched.promotions == 1
    assert env._push.__self__ is sched._impl
    # The facade keeps serving pops/stats for the promoted impl.
    env.run(until=4.0)
    assert sched.stats()["impl"] == "auto(calendar)"


class _Opaque:
    """No ordering protocol: items must never be compared."""
    __lt__ = None


def test_tie_breaking_heap_is_fifo_and_never_compares_items():
    heap = TieBreakingHeap()
    items = [_Opaque() for _ in range(6)]
    for item in items[:3]:
        heap.push((1, 0.0), item)
    for item in items[3:]:
        heap.push((0, 0.0), item)
    assert len(heap) == 6 and bool(heap)
    order = [heap.pop() for _ in range(6)]
    assert order == items[3:] + items[:3]  # priority first, FIFO within
    assert not heap


def test_env_selection(monkeypatch):
    monkeypatch.delenv("REPRO_DES_QUEUE", raising=False)
    assert scheduler_name_from_env() == DEFAULT_QUEUE
    for name in SCHEDULERS:
        monkeypatch.setenv("REPRO_DES_QUEUE", name)
        assert scheduler_name_from_env() == name
        assert make_scheduler().name == name
        assert Environment().scheduler.name == name
    monkeypatch.setenv("REPRO_DES_QUEUE", "bogus")
    with pytest.raises(ValueError, match="bogus"):
        scheduler_name_from_env()


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_kernel_run_identical_across_schedulers(name, monkeypatch):
    """A small model produces the same trajectory on every scheduler."""
    monkeypatch.setenv("REPRO_DES_QUEUE", name)
    env = Environment()
    log = []

    def ticker(env, period, tag):
        while env.now < 50.0:
            yield env.timeout(period)
            log.append((env.now, tag))

    env.process(ticker(env, 3.0, "a"))
    env.process(ticker(env, 7.0, "b"))
    env.run(until=50.0)
    assert log == sorted(log, key=lambda x: x[0])
    # Same trajectory as the reference heap.
    monkeypatch.setenv("REPRO_DES_QUEUE", "heap")
    env2 = Environment()
    ref = []

    def ticker2(env, period, tag):
        while env.now < 50.0:
            yield env.timeout(period)
            ref.append((env.now, tag))

    env2.process(ticker2(env2, 3.0, "a"))
    env2.process(ticker2(env2, 7.0, "b"))
    env2.run(until=50.0)
    assert log == ref
