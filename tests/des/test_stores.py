"""Tests for Store and FilterStore (pipe-like buffers)."""

import pytest

from repro.des import FilterStore, Store


def test_capacity_validation(env):
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_put_get_fifo(env):
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [0, 1, 2]


def test_get_blocks_until_item_available(env):
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((item, env.now))

    def producer(env):
        yield env.timeout(7)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [("x", 7.0)]


def test_put_blocks_when_full(env):
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        log.append(("a in", env.now))
        yield store.put("b")
        log.append(("b in", env.now))

    def consumer(env):
        yield env.timeout(5)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("a in", 0.0), ("b in", 5.0)]


def test_len_reports_items(env):
    store = Store(env)

    def producer(env):
        yield store.put(1)
        yield store.put(2)

    env.process(producer(env))
    env.run()
    assert len(store) == 2
    assert store.items == [1, 2]


def test_put_cancel_withdraws_offer(env):
    store = Store(env, capacity=1)

    def fill(env):
        yield store.put("a")

    def canceller(env):
        yield env.timeout(1)
        put = store.put("b")
        assert not put.triggered
        put.cancel()

    env.process(fill(env))
    env.process(canceller(env))
    env.run()
    assert store.items == ["a"]
    assert not store.put_queue


def test_get_cancel_withdraws(env):
    store = Store(env)

    def canceller(env):
        get = store.get()
        yield env.timeout(1)
        get.cancel()

    env.process(canceller(env))
    env.run()
    assert not store.get_queue


def test_multiple_getters_fifo(env):
    store = Store(env)
    got = []

    def getter(env, name):
        item = yield store.get()
        got.append((name, item))

    def producer(env):
        yield env.timeout(1)
        yield store.put("first")
        yield store.put("second")

    env.process(getter(env, "g1"))
    env.process(getter(env, "g2"))
    env.process(producer(env))
    env.run()
    assert got == [("g1", "first"), ("g2", "second")]


def test_filter_store_selects_matching(env):
    store = FilterStore(env)
    got = []

    def getter(env):
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    def producer(env):
        yield store.put(1)
        yield store.put(3)
        yield store.put(4)

    env.process(getter(env))
    env.process(producer(env))
    env.run()
    assert got == [4]
    assert store.items == [1, 3]


def test_filter_store_unmatched_getter_does_not_block_others(env):
    store = FilterStore(env)
    got = []

    def wants_big(env):
        item = yield store.get(lambda x: x > 100)
        got.append(("big", item))

    def wants_any(env):
        item = yield store.get()
        got.append(("any", item))

    def producer(env):
        yield env.timeout(1)
        yield store.put(5)
        yield env.timeout(1)
        yield store.put(500)

    env.process(wants_big(env))
    env.process(wants_any(env))
    env.process(producer(env))
    env.run()
    assert got == [("any", 5), ("big", 500)]


def test_store_respects_capacity_under_churn(env):
    store = Store(env, capacity=3)
    high_water = []

    def producer(env):
        for i in range(20):
            yield store.put(i)
            high_water.append(len(store.items))

    def consumer(env):
        while True:
            yield env.timeout(1)
            yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run(until=50)
    assert max(high_water) <= 3
