"""Integration tests of the full NOW simulation."""

import pytest

from repro.rocc import NetworkMode, SimulationConfig, simulate


@pytest.fixture(scope="module")
def cf_result():
    return simulate(
        SimulationConfig(nodes=2, duration=2_000_000.0, sampling_period=20_000.0,
                         batch_size=1, seed=7)
    )


@pytest.fixture(scope="module")
def bf_result():
    return simulate(
        SimulationConfig(nodes=2, duration=2_000_000.0, sampling_period=20_000.0,
                         batch_size=32, seed=7)
    )


def test_samples_flow_end_to_end(cf_result):
    r = cf_result
    # 2 nodes x 1 app x (2 s / 20 ms) samples, minus edge effects.
    assert r.samples_generated == pytest.approx(200, abs=4)
    assert r.samples_received > 0.9 * r.samples_generated
    assert r.batches_received == r.samples_received  # CF: one per sample


def test_bf_batches(bf_result):
    r = bf_result
    assert r.batches_received * 32 == r.samples_received


def test_cf_latency_positive_and_reasonable(cf_result):
    assert 0 < cf_result.monitoring_latency_forwarding < 100_000.0  # < 100 ms


def test_bf_total_latency_includes_accumulation(bf_result):
    # ~ (batch/2) * period per node: 16 * 20ms = 320 ms.
    assert bf_result.monitoring_latency_total == pytest.approx(
        16 * 20_000.0, rel=0.3
    )
    assert (
        bf_result.monitoring_latency_forwarding
        < bf_result.monitoring_latency_total
    )


def test_bf_cuts_pd_overhead_by_more_than_60_percent(cf_result, bf_result):
    """The paper's headline result."""
    reduction = 1 - bf_result.pd_cpu_time_per_node / cf_result.pd_cpu_time_per_node
    assert reduction > 0.60


def test_bf_cuts_main_overhead_by_about_80_percent(cf_result, bf_result):
    reduction = 1 - bf_result.main_cpu_time / cf_result.main_cpu_time
    assert 0.70 < reduction < 0.90


def test_bf_forwarding_latency_lower(cf_result, bf_result):
    assert (
        bf_result.monitoring_latency_forwarding
        < cf_result.monitoring_latency_forwarding
    )


def test_throughput_matches_sampling_rate(cf_result):
    # One app per node at a 20 ms period: 50 samples/s per daemon.
    assert cf_result.throughput_per_daemon == pytest.approx(50.0, rel=0.1)


def test_app_cpu_utilization_sane(cf_result):
    assert 0.5 < cf_result.app_cpu_utilization_per_node < 1.0


def test_uninstrumented_baseline_has_no_is_activity():
    r = simulate(
        SimulationConfig(nodes=2, duration=1_000_000.0, instrumented=False, seed=3)
    )
    assert r.samples_generated == 0
    assert r.samples_received == 0
    assert r.pd_cpu_time_per_node == 0.0
    assert r.main_cpu_time == 0.0
    assert r.app_cpu_utilization_per_node > 0.5


def test_uninstrumented_app_does_better_or_equal():
    kw = dict(nodes=2, duration=1_000_000.0, sampling_period=5_000.0, seed=3)
    instrumented = simulate(SimulationConfig(batch_size=1, **kw))
    baseline = simulate(SimulationConfig(instrumented=False, **kw))
    assert baseline.app_cycles >= instrumented.app_cycles


def test_reproducible_with_same_seed():
    cfg = SimulationConfig(nodes=2, duration=500_000.0, seed=42)
    a, b = simulate(cfg), simulate(cfg)
    assert a.pd_cpu_time_per_node == b.pd_cpu_time_per_node
    assert a.monitoring_latency_forwarding == b.monitoring_latency_forwarding
    assert a.samples_received == b.samples_received


def test_different_replications_differ():
    cfg = SimulationConfig(nodes=2, duration=500_000.0, seed=42)
    a = simulate(cfg)
    b = simulate(cfg.with_(replication=1))
    assert a.pd_cpu_time_per_node != b.pd_cpu_time_per_node


def test_shared_network_contention_raises_latency():
    kw = dict(nodes=8, duration=1_000_000.0, sampling_period=5_000.0,
              batch_size=1, seed=5)
    shared = simulate(SimulationConfig(network_mode=NetworkMode.SHARED, **kw))
    free = simulate(
        SimulationConfig(network_mode=NetworkMode.CONTENTION_FREE, **kw)
    )
    assert (
        shared.monitoring_latency_forwarding
        >= free.monitoring_latency_forwarding
    )


def test_warmup_reduces_measured_window():
    cfg = SimulationConfig(nodes=1, duration=2_000_000.0, warmup=1_000_000.0,
                           seed=9)
    r = simulate(cfg)
    assert r.duration == 1_000_000.0
    full = simulate(cfg.with_(warmup=0.0))
    # Busy time over the half window must be about half the full window's.
    assert r.app_cpu_time_per_node == pytest.approx(
        full.app_cpu_time_per_node / 2, rel=0.15
    )


def test_shorter_sampling_period_costs_more(cf_result):
    fast = simulate(
        SimulationConfig(nodes=2, duration=2_000_000.0, sampling_period=5_000.0,
                         batch_size=1, seed=7)
    )
    assert fast.pd_cpu_time_per_node > cf_result.pd_cpu_time_per_node


def test_cpu_busy_breakdown_consistent(cf_result):
    r = cf_result
    total_app = sum(
        v for (node, owner), v in r.cpu_busy.items() if owner.value == "application"
    )
    assert total_app / r.nodes == pytest.approx(r.app_cpu_time_per_node)
