"""Focused tests of the Paradyn daemon: batching, flush, cost accounting."""

import pytest

from repro.des import Environment
from repro.rocc import (
    Batch,
    DaemonCostModel,
    ParadynDaemon,
    Sample,
    SamplePipe,
    SimulationConfig,
)
from repro.rocc.cpu import RoundRobinCPU
from repro.rocc.metrics import Metrics
from repro.rocc.network import ContentionFreeNetwork
from repro.rocc.node import NodeContext
from repro.variates.distributions import Deterministic
from repro.variates.streams import StreamFactory


def make_ctx(env, config):
    return NodeContext(
        env=env,
        node_id=0,
        cpu=RoundRobinCPU(env, quantum=config.workload.cpu_quantum),
        network=ContentionFreeNetwork(env),
        metrics=Metrics(),
        config=config,
        streams=StreamFactory(seed=1),
    )


def deterministic_costs():
    return DaemonCostModel(
        collection_cpu=Deterministic(100.0),
        forward_cpu=Deterministic(200.0),
    )


def feed(env, pipe, times):
    def gen(env):
        last = 0.0
        for t in times:
            yield env.timeout(t - last)
            last = t
            yield pipe.put(Sample(created_at=t, node=0, pid=0))

    env.process(gen(env))


def test_cf_forwards_each_sample():
    env = Environment()
    cfg = SimulationConfig(batch_size=1, daemon_costs=deterministic_costs())
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env)
    received = []
    daemon = ParadynDaemon(ctx, pipe, received.append)
    feed(env, pipe, [1000.0, 2000.0, 3000.0])
    env.run(until=10_000)
    assert len(received) == 3
    assert all(len(b) == 1 for b in received)
    assert daemon.forward_calls == 3
    assert daemon.samples_forwarded == 3


def test_bf_accumulates_batch():
    env = Environment()
    cfg = SimulationConfig(batch_size=3, daemon_costs=deterministic_costs())
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env)
    received = []
    daemon = ParadynDaemon(ctx, pipe, received.append)
    feed(env, pipe, [1000.0, 2000.0, 3000.0, 4000.0])
    env.run(until=20_000)
    assert len(received) == 1
    assert len(received[0]) == 3
    assert daemon.forward_calls == 1


def test_cf_batch_sent_at_is_sample_creation():
    env = Environment()
    cfg = SimulationConfig(batch_size=1, daemon_costs=deterministic_costs())
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env)
    received = []
    ParadynDaemon(ctx, pipe, received.append)
    feed(env, pipe, [1000.0])
    env.run(until=10_000)
    assert received[0].sent_at == 1000.0


def test_bf_batch_sent_at_is_completion_time():
    env = Environment()
    cfg = SimulationConfig(batch_size=2, daemon_costs=deterministic_costs())
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env)
    received = []
    ParadynDaemon(ctx, pipe, received.append)
    feed(env, pipe, [1000.0, 5000.0])
    env.run(until=20_000)
    # Batch completed after the second sample's collection work (100 µs).
    assert received[0].sent_at == pytest.approx(5100.0)


def test_cf_cpu_cost_collection_plus_forward():
    env = Environment()
    cfg = SimulationConfig(batch_size=1, daemon_costs=deterministic_costs(),
                           include_pvmd=False, include_other=False)
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env)
    ParadynDaemon(ctx, pipe, lambda b: None)
    feed(env, pipe, [1000.0, 2000.0])
    env.run(until=10_000)
    from repro.workload import ProcessType

    # Per sample: 100 (collect) + 200 (forward) = 300.
    assert ctx.cpu.busy_time(ProcessType.PARADYN_DAEMON) == pytest.approx(600.0)


def test_bf_cpu_cost_amortizes_forward():
    env = Environment()
    cfg = SimulationConfig(batch_size=2, daemon_costs=deterministic_costs())
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env)
    ParadynDaemon(ctx, pipe, lambda b: None)
    feed(env, pipe, [1000.0, 2000.0])
    env.run(until=10_000)
    from repro.workload import ProcessType

    # 2 x 100 (collect) + 1 x 200 (forward) = 400 for two samples.
    assert ctx.cpu.busy_time(ProcessType.PARADYN_DAEMON) == pytest.approx(400.0)


def test_per_sample_batch_cpu_cost():
    env = Environment()
    costs = deterministic_costs()
    costs.per_sample_batch_cpu = 10.0
    cfg = SimulationConfig(batch_size=2, daemon_costs=costs)
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env)
    ParadynDaemon(ctx, pipe, lambda b: None)
    feed(env, pipe, [1000.0, 2000.0])
    env.run(until=10_000)
    from repro.workload import ProcessType

    assert ctx.cpu.busy_time(ProcessType.PARADYN_DAEMON) == pytest.approx(420.0)


def test_flush_timeout_forwards_partial_batch():
    env = Environment()
    cfg = SimulationConfig(
        batch_size=100,
        batch_flush_timeout=50_000.0,
        daemon_costs=deterministic_costs(),
    )
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env)
    received = []
    ParadynDaemon(ctx, pipe, received.append)
    feed(env, pipe, [1000.0, 2000.0])
    env.run(until=200_000)
    assert len(received) == 1
    assert len(received[0]) == 2  # partial batch flushed


def test_no_flush_without_timeout():
    env = Environment()
    cfg = SimulationConfig(batch_size=100, daemon_costs=deterministic_costs())
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env)
    received = []
    ParadynDaemon(ctx, pipe, received.append)
    feed(env, pipe, [1000.0, 2000.0])
    env.run(until=200_000)
    assert received == []


def test_merge_loop_relays_child_batches():
    env = Environment()
    cfg = SimulationConfig(batch_size=1, daemon_costs=deterministic_costs())
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env)
    received = []
    daemon = ParadynDaemon(ctx, pipe, received.append)
    daemon.enable_tree_inbox()
    child_batch = Batch(
        samples=[Sample(created_at=0.0, node=3, pid=0)], origin=3
    )
    daemon.deliver(child_batch)
    env.run(until=10_000)
    assert len(received) == 1
    assert received[0].origin == 0  # re-stamped by the relaying daemon
    assert received[0].samples[0].hops == 1
    assert ctx.metrics.merges_by_node[0] == 1
