"""Topology partitioner: LP assignment, lookahead, eligibility."""

from dataclasses import replace
from math import inf

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.spec import DaemonCrash, FaultPlan
from repro.rocc import Architecture, ForwardingTopology, SimulationConfig
from repro.rocc.config import NetworkMode
from repro.rocc.partition import (
    MAIN_NODE,
    lp_workers_from_env,
    parallel_ineligibility,
    partition_topology,
)
from repro.variates.distributions import Deterministic, Exponential, Uniform

PARAMS = st.fixed_dictionaries({
    "nodes": st.integers(min_value=1, max_value=300),
    "k": st.integers(min_value=1, max_value=12),
    "tree": st.booleans(),
    "net_min": st.sampled_from([None, 5.0, 71.0]),
})


def _config(nodes, tree, net_min):
    cfg = SimulationConfig(
        architecture=Architecture.MPP,
        nodes=nodes,
        duration=100_000.0,
        forwarding=(
            ForwardingTopology.TREE
            if tree and nodes > 1
            else ForwardingTopology.DIRECT
        ),
    )
    if net_min is not None:
        wl = replace(cfg.workload, pd_network=Uniform(net_min, net_min * 3))
        cfg = cfg.with_(workload=wl)
    return cfg


@given(PARAMS)
@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_partition_invariants(params):
    cfg = _config(params["nodes"], params["tree"], params["net_min"])
    plan = partition_topology(cfg, params["k"])

    # Every node lives in exactly one LP; ranges tile [0, nodes).
    assert plan.lp_count == min(params["k"], cfg.nodes)
    covered = []
    for lo, hi in plan.ranges:
        assert lo < hi, "no LP may be empty"
        covered.extend(range(lo, hi))
    assert covered == list(range(cfg.nodes))
    for node in range(cfg.nodes):
        lp = plan.lp_of(node)
        lo, hi = plan.ranges[lp]
        assert lo <= node < hi
    assert plan.lp_of(MAIN_NODE) == plan.main_lp == plan.lp_count

    # Balanced: range sizes differ by at most one.
    sizes = [hi - lo for lo, hi in plan.ranges]
    assert max(sizes) - min(sizes) <= 1

    # Cut edges: endpoints in different LPs, conservative lookahead.
    expected_la = max(0.0, cfg.workload.pd_network.support_min)
    for e in plan.cut_edges:
        assert plan.lp_of(e.src_node) == e.src_lp
        assert plan.lp_of(e.dst_node) == e.dst_lp
        assert e.src_lp != e.dst_lp
        assert e.lookahead == expected_la
        # Acyclic LP graph: every cut edge points to a lower-indexed
        # LP (tree parents) or to the main LP.
        assert e.dst_lp < e.src_lp or e.dst_lp == plan.main_lp
    if params["net_min"] is not None:
        assert plan.min_lookahead == params["net_min"] > 0.0

    # Flat forwarding: every daemon uplink crosses into the main LP.
    if cfg.forwarding is ForwardingTopology.DIRECT:
        assert len(plan.cut_edges) == cfg.nodes
        assert {e.src_lp for e in plan.cut_edges} == set(range(plan.lp_count))
        la_map = plan.lookahead_into(plan.main_lp)
        assert set(la_map) == set(range(plan.lp_count))
        assert all(v == expected_la for v in la_map.values())


def test_single_lp_keeps_only_main_edges():
    cfg = _config(nodes=7, tree=False, net_min=None)
    plan = partition_topology(cfg, 1)
    assert plan.lp_count == 1
    assert plan.ranges == ((0, 7),)
    # K=1 degenerates: no node-LP-to-node-LP edges exist, only uplinks
    # into the main LP.
    assert all(e.dst_lp == plan.main_lp for e in plan.cut_edges)


def test_zero_lookahead_for_exponential_network():
    cfg = SimulationConfig(architecture=Architecture.MPP, nodes=4,
                           duration=1_000.0)
    assert isinstance(cfg.workload.pd_network, Exponential)
    plan = partition_topology(cfg, 2)
    assert plan.min_lookahead == 0.0


def test_deterministic_lookahead():
    cfg = _config(nodes=4, tree=False, net_min=None)
    wl = replace(cfg.workload, pd_network=Deterministic(42.0))
    plan = partition_topology(cfg.with_(workload=wl), 2)
    assert plan.min_lookahead == 42.0


def test_no_cut_edges_gives_infinite_lookahead():
    plan = partition_topology(_config(1, False, None), 1)
    # A single node still has its main uplink; strip it to model an
    # edgeless plan.
    empty = replace(plan, cut_edges=())
    assert empty.min_lookahead == inf


def test_k_must_be_positive():
    cfg = _config(nodes=4, tree=False, net_min=None)
    with pytest.raises(ValueError):
        partition_topology(cfg, 0)


def test_lp_of_rejects_foreign_node():
    plan = partition_topology(_config(4, False, None), 2)
    with pytest.raises(ValueError):
        plan.lp_of(99)


# ---------------------------------------------------------------------------
# Eligibility gate
# ---------------------------------------------------------------------------


def test_eligibility_gate():
    base = SimulationConfig(architecture=Architecture.MPP, nodes=4,
                            duration=100_000.0)
    assert parallel_ineligibility(base) is None
    now_cf = SimulationConfig(architecture=Architecture.NOW, nodes=4,
                              network_mode=NetworkMode.CONTENTION_FREE,
                              duration=100_000.0)
    assert parallel_ineligibility(now_cf) is None

    cases = [
        SimulationConfig(architecture=Architecture.SMP, nodes=4,
                         duration=100_000.0),
        SimulationConfig(architecture=Architecture.NOW, nodes=4,
                         duration=100_000.0),  # shared Ethernet
        base.with_(forwarding=ForwardingTopology.TREE),
        base.with_(barrier_period=10_000.0),
        base.with_(faults=FaultPlan((
            DaemonCrash(node=0, at=1_000.0, restart_after=100.0),
        ))),
    ]
    for cfg in cases:
        assert parallel_ineligibility(cfg) is not None, cfg


def test_lp_workers_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_DES_PARALLEL", raising=False)
    assert lp_workers_from_env() is None
    monkeypatch.setenv("REPRO_DES_PARALLEL", "")
    assert lp_workers_from_env() is None
    monkeypatch.setenv("REPRO_DES_PARALLEL", "1")
    assert lp_workers_from_env() is None
    monkeypatch.setenv("REPRO_DES_PARALLEL", "4")
    assert lp_workers_from_env() == 4
    monkeypatch.setenv("REPRO_DES_PARALLEL", "bogus")
    with pytest.raises(ValueError):
        lp_workers_from_env()
    # 0 and negative counts are garbage, not "sequential": reject them
    # the same way the CLIs reject --lp-workers 0.
    monkeypatch.setenv("REPRO_DES_PARALLEL", "0")
    with pytest.raises(ValueError, match=">= 1"):
        lp_workers_from_env()
    monkeypatch.setenv("REPRO_DES_PARALLEL", "-3")
    with pytest.raises(ValueError, match=">= 1"):
        lp_workers_from_env()
