"""Tests for the ROCC and workload command-line interfaces."""

import pytest

from repro.rocc.__main__ import build_parser, config_from_args, main
from repro.rocc.config import Architecture, ForwardingTopology


class TestRoccCli:
    def test_defaults(self):
        args = build_parser().parse_args([])
        cfg = config_from_args(args)
        assert cfg.architecture is Architecture.NOW
        assert cfg.nodes == 8
        assert cfg.sampling_period == 40_000.0
        assert cfg.adaptive is None

    def test_mpp_tree_flags(self):
        args = build_parser().parse_args(
            ["--arch", "mpp", "--nodes", "16", "--tree", "--batch", "32"]
        )
        cfg = config_from_args(args)
        assert cfg.architecture is Architecture.MPP
        assert cfg.forwarding is ForwardingTopology.TREE
        assert cfg.batch_size == 32

    def test_adaptive_flag(self):
        args = build_parser().parse_args(["--adaptive-budget", "0.02"])
        cfg = config_from_args(args)
        assert cfg.adaptive is not None
        assert cfg.adaptive.budget == 0.02

    def test_barrier_flag(self):
        args = build_parser().parse_args(["--barrier-ms", "5"])
        cfg = config_from_args(args)
        assert cfg.barrier_period == 5_000.0

    def test_run_prints_summary(self, capsys):
        rc = main(
            ["--nodes", "2", "--duration-s", "0.5", "--period-ms", "20",
             "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Pd CPU/node" in out
        assert "samples" in out

    def test_uninstrumented_run(self, capsys):
        rc = main(["--nodes", "2", "--duration-s", "0.3", "--uninstrumented"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0/0 delivered" in out

    def test_aggregated_run(self, capsys):
        rc = main(
            ["--arch", "mpp", "--nodes", "32", "--duration-s", "0.5",
             "--aggregated", "--batch", "8"]
        )
        assert rc == 0
        assert "n=32" in capsys.readouterr().out

    def test_workload_run(self, capsys):
        rc = main(
            ["--nodes", "2", "--duration-s", "0.5", "--seed", "3",
             "--workload", "stationary:rate=100"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "open workload :" in out
        assert "wl=stationary:rate=100" in out

    def test_workload_open_model_reports_users(self, capsys):
        rc = main(
            ["--nodes", "2", "--duration-s", "0.5", "--seed", "3",
             "--workload", "open:avg_users=40,rpm=120,window_s=0.1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "users" in out

    def test_workload_unknown_name_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--workload", "bogus"])
        assert "unknown workload" in capsys.readouterr().err

    def test_workload_bad_parameters_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--workload", "open:rpm=-5"])
        assert "must be positive" in capsys.readouterr().err

    def test_lp_workers_rejects_non_positive(self, capsys):
        for bad in ("0", "-3"):
            with pytest.raises(SystemExit):
                main(["--lp-workers", bad, "--duration-s", "0.1"])
            assert "--lp-workers must be >= 1" in capsys.readouterr().err


class TestWorkloadCli:
    def test_generate_and_characterize(self, tmp_path, capsys):
        from repro.workload.__main__ import main as wmain

        out = tmp_path / "trace.csv"
        rc = wmain(
            ["generate", "--benchmark", "pvmbt", "--seconds", "1",
             "--out", str(out)]
        )
        assert rc == 0
        assert out.exists()
        capsys.readouterr()

        rc = wmain(["characterize", str(out), "--fit"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "application" in text
        assert "lognormal" in text

    def test_unknown_benchmark_errors(self, tmp_path):
        from repro.workload.__main__ import main as wmain

        with pytest.raises(KeyError):
            wmain(["generate", "--benchmark", "pvmep",
                   "--out", str(tmp_path / "x.csv")])
