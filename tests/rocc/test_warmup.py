"""Tests for warmup handling (statistics reset at the warmup boundary)."""

import pytest

from repro.rocc import SimulationConfig, simulate


def cfg(**kw):
    base = dict(nodes=2, duration=2_000_000.0, sampling_period=10_000.0, seed=83)
    base.update(kw)
    return SimulationConfig(**base)


def test_measured_duration_excludes_warmup():
    r = simulate(cfg(warmup=500_000.0))
    assert r.duration == 1_500_000.0


def test_cpu_busy_windows_are_additive():
    """busy(0..2s) ≈ busy(0..1s window) + busy(1..2s window) — the
    warmup snapshot subtracts exactly the pre-warmup accumulation."""
    full = simulate(cfg())
    second_half = simulate(cfg(warmup=1_000_000.0))
    first_half = simulate(cfg(duration=1_000_000.0))
    assert (
        first_half.app_cpu_time_per_node + second_half.app_cpu_time_per_node
    ) == pytest.approx(full.app_cpu_time_per_node, rel=0.02)
    assert (
        first_half.pd_cpu_time_per_node + second_half.pd_cpu_time_per_node
    ) == pytest.approx(full.pd_cpu_time_per_node, rel=0.05)


def test_sample_counters_restart():
    r = simulate(cfg(warmup=1_000_000.0))
    # Only the second half's samples are counted: ~2 nodes x 100/s x 1 s.
    assert r.samples_generated == pytest.approx(200, abs=8)


def test_network_busy_subtracted():
    full = simulate(cfg())
    half = simulate(cfg(warmup=1_000_000.0))
    assert half.network_utilization == pytest.approx(
        full.network_utilization, rel=0.15
    )


def test_latency_tallies_post_warmup_only():
    r = simulate(cfg(warmup=1_000_000.0))
    assert r.samples_received <= r.samples_generated + 5
    assert r.monitoring_latency_forwarding > 0


def test_utilizations_similar_with_and_without_warmup():
    """A stationary workload has matching windowed utilizations."""
    full = simulate(cfg())
    warm = simulate(cfg(warmup=800_000.0))
    assert warm.app_cpu_utilization_per_node == pytest.approx(
        full.app_cpu_utilization_per_node, rel=0.05
    )
    assert warm.pd_cpu_utilization_per_node == pytest.approx(
        full.pd_cpu_utilization_per_node, rel=0.15
    )


def test_sample_conservation_with_warmup():
    """Samples generated pre-warmup but delivered post-warmup count on
    *neither* side: received + dropped never exceeds generated."""
    for seed in (1, 7, 11, 83):
        r = simulate(cfg(seed=seed, warmup=500_000.0))
        in_flight = r.samples_generated - r.samples_received - r.samples_dropped
        assert in_flight >= 0, (
            f"seed={seed}: generated={r.samples_generated} "
            f"received={r.samples_received} dropped={r.samples_dropped}"
        )


def test_sample_conservation_with_faults_and_warmup():
    from repro.faults import DaemonCrash, FaultPlan, NetworkFault, RecoveryPolicy

    plan = FaultPlan((
        DaemonCrash(node=1, at=800_000.0, restart_after=300_000.0),
        NetworkFault(loss_probability=0.05, start=600_000.0, stop=1_500_000.0),
    ))
    for seed in (1, 7, 11):
        r = simulate(cfg(seed=seed, warmup=500_000.0, faults=plan,
                         recovery=RecoveryPolicy(max_retries=1)))
        in_flight = r.samples_generated - r.samples_received - r.samples_dropped
        assert in_flight >= 0, f"seed={seed}: in-flight {in_flight}"
