"""Open-workload traffic wired into the full ROCC simulation."""

import math

import pytest

from repro.rocc import SimulationConfig, simulate
from repro.rocc.aggregate import simulate_aggregated
from repro.rocc.config import Architecture, NetworkMode
from repro.rocc.partition import parallel_ineligibility
from repro.rocc.system import RawAggregates
from repro.verify import diff_results
from repro.workload.generators import TrafficSpec


def _cfg(**kw):
    base = dict(
        nodes=2, duration=600_000.0, sampling_period=20_000.0, seed=7,
        network_mode=NetworkMode.CONTENTION_FREE,
    )
    base.update(kw)
    return SimulationConfig(**base)


@pytest.fixture(scope="module")
def open_results():
    return simulate(_cfg(
        traffic=TrafficSpec.parse("open:avg_users=50,rpm=120,window_s=0.1")
    ))


def test_config_coerces_spec_from_string():
    cfg = _cfg(traffic="stationary:rate=50")
    assert isinstance(cfg.traffic, TrafficSpec)
    assert cfg.traffic.name == "stationary"


def test_config_rejects_bad_spec_eagerly():
    with pytest.raises(ValueError, match="unknown workload"):
        _cfg(traffic="nosuch")
    with pytest.raises(ValueError, match="bad parameters"):
        _cfg(traffic="stationary:frequency=9")


def test_arrivals_are_served_and_counted(open_results):
    r = open_results
    assert r.open_arrivals > 0
    assert 0 < r.open_completed <= r.open_arrivals
    assert r.open_offered_rate > 0.0
    assert r.open_latency_mean > 0.0
    assert "wl=open" in r.config_summary


def test_active_users_tracks_population(open_results):
    # 50 expected users resampled every 0.1 s over a 0.6 s run: the
    # time-average stays near the configured mean.
    assert open_results.open_active_users == pytest.approx(50.0, rel=0.35)


def test_no_traffic_fields_default(open_results):
    r = simulate(_cfg())
    assert r.open_arrivals == 0 and r.open_completed == 0
    assert r.open_offered_rate == 0.0
    assert math.isnan(r.open_active_users)
    assert math.isnan(r.open_latency_mean)
    assert "wl=" not in r.config_summary


def test_stationary_workload_has_nan_users():
    r = simulate(_cfg(traffic="stationary:rate=100"))
    assert r.open_arrivals > 0
    assert math.isnan(r.open_active_users)


def test_zero_rate_traffic_is_a_noop():
    baseline = simulate(_cfg())
    zero = simulate(_cfg(traffic="stationary:rate=0"))
    assert diff_results(baseline, zero, ignore=("config_summary",)) == []


def test_seeded_open_cell_replays_bit_identical(open_results):
    again = simulate(_cfg(
        traffic=TrafficSpec.parse("open:avg_users=50,rpm=120,window_s=0.1")
    ))
    assert diff_results(open_results, again) == []


def test_traffic_perturbs_the_instrumented_system(open_results):
    # Open load shares the CPUs with the IS: the run must differ from
    # the traffic-free one beyond the open_* fields themselves.
    baseline = simulate(_cfg())
    assert baseline.app_cpu_time_per_node != open_results.app_cpu_time_per_node


def test_warmup_filters_pre_epoch_requests():
    spec = TrafficSpec.parse("open:avg_users=50,rpm=120,window_s=0.1")
    full = simulate(_cfg(traffic=spec))
    warm = simulate(_cfg(traffic=spec, warmup=300_000.0))
    assert 0 < warm.open_arrivals < full.open_arrivals
    assert warm.open_completed <= warm.open_arrivals
    assert not math.isnan(warm.open_active_users)


def test_smp_single_station_serves_traffic():
    r = simulate(_cfg(
        architecture=Architecture.SMP, nodes=2, app_processes_per_node=2,
        network_mode=NetworkMode.SHARED,
        traffic="stationary:rate=100",
    ))
    assert r.open_completed > 0


def test_replay_traffic_arrival_count_is_exact():
    times = tuple(float(t) for t in range(50_000, 550_000, 50_000))
    r = simulate(_cfg(traffic=TrafficSpec.of("replay", times=times)))
    # Every trace record inside the horizon arrives exactly once.
    assert r.open_arrivals == sum(1 for t in times if t <= 600_000.0)


def test_aggregated_mode_rejects_traffic():
    with pytest.raises(ValueError, match="phantom nodes"):
        simulate_aggregated(_cfg(traffic="stationary:rate=10"))


def test_traffic_is_parallel_ineligible():
    cfg = _cfg(nodes=4, traffic="stationary:rate=10")
    reason = parallel_ineligibility(cfg)
    assert reason is not None and "traffic" in reason
    # lp_workers on an ineligible config falls back, not crashes.
    r = simulate(cfg, lp_workers=2)
    assert r.open_arrivals > 0


def test_raw_aggregates_merge_adopts_users_mean():
    a = RawAggregates()
    b = RawAggregates(open_users_mean=42.0)
    a.merge(b)
    assert a.open_users_mean == 42.0
    # NaN on the right never clobbers a real level on the left.
    c = RawAggregates(open_users_mean=7.0)
    c.merge(RawAggregates())
    assert c.open_users_mean == 7.0
