"""Property-based invariants of the full ROCC simulation (hypothesis).

Small randomized configurations across all three architectures must
satisfy conservation and sanity invariants regardless of parameters.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.rocc import Architecture, ForwardingTopology, SimulationConfig, simulate
from repro.workload import ProcessType

CONFIGS = st.fixed_dictionaries(
    {
        "architecture": st.sampled_from(list(Architecture)),
        "nodes": st.integers(min_value=1, max_value=4),
        "app_processes_per_node": st.integers(min_value=1, max_value=3),
        "sampling_period": st.sampled_from([5_000.0, 20_000.0, 50_000.0]),
        "batch_size": st.sampled_from([1, 2, 8]),
        "daemons": st.integers(min_value=1, max_value=2),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def build(params) -> SimulationConfig:
    tree = (
        params["architecture"] is Architecture.MPP
        and params["seed"] % 2 == 0
        and params["nodes"] > 1
    )
    return SimulationConfig(
        duration=400_000.0,
        forwarding=ForwardingTopology.TREE if tree else ForwardingTopology.DIRECT,
        **params,
    )


@given(CONFIGS)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_conservation_invariants(params):
    cfg = build(params)
    r = simulate(cfg)

    # Sample conservation: received <= forwarded-capable <= generated.
    assert 0 <= r.samples_received <= r.samples_generated
    assert r.batches_received <= max(r.samples_received, 0) or r.samples_received == 0

    # Utilizations are proper fractions of their capacity.
    assert 0.0 <= r.pd_cpu_utilization_per_node <= 1.0 + 1e-9
    assert 0.0 <= r.app_cpu_utilization_per_node <= 1.0 + 1e-9
    assert 0.0 <= r.main_cpu_utilization <= 1.0 + 1e-9

    # CPU accounting: per-node busy never exceeds capacity x duration.
    total_busy = sum(r.cpu_busy.values())
    n_worker_cpus = (
        cfg.nodes
        if cfg.architecture is Architecture.SMP
        else cfg.nodes * cfg.cpus_per_node
    )
    # SMP hosts the main process on the pooled CPUs.
    assert total_busy <= n_worker_cpus * r.duration * (1 + 1e-9)

    # Latency tallies only exist when samples were received.
    if r.samples_received:
        assert r.monitoring_latency_total > 0
        assert r.monitoring_latency_forwarding >= 0
        # Total latency (incl. accumulation) dominates forwarding latency.
        assert (
            r.monitoring_latency_total
            >= r.monitoring_latency_forwarding - 1e-9
        )


@given(CONFIGS)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_determinism(params):
    cfg = build(params)
    a, b = simulate(cfg), simulate(cfg)
    assert a.samples_received == b.samples_received
    assert a.pd_cpu_time_per_node == b.pd_cpu_time_per_node
    assert a.app_cpu_time_per_node == b.app_cpu_time_per_node


@given(CONFIGS)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_uninstrumented_baseline_dominates(params):
    cfg = build(params)
    instrumented = simulate(cfg)
    baseline = simulate(cfg.with_(instrumented=False))
    assert baseline.pd_cpu_time_per_node == 0.0
    # Instrumentation never helps the application in aggregate work,
    # but the cycle COUNT can creep up slightly on a per-seed basis:
    # an app blocked on a full pipe frees its round-robin CPU share,
    # and the competing apps absorbing it may complete several short
    # cycles where the blocked app would have completed one long one.
    # Allow that work-conserving scheduling artifact a little slack.
    assert instrumented.app_cycles <= baseline.app_cycles * 1.05 + 2


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_pd_busy_matches_owner_accounting(seed):
    """The results' per-node breakdown sums to the reported totals."""
    cfg = SimulationConfig(nodes=3, duration=400_000.0, seed=seed)
    r = simulate(cfg)
    pd_total = sum(
        v
        for (node, owner), v in r.cpu_busy.items()
        if owner is ProcessType.PARADYN_DAEMON
    )
    assert abs(pd_total / 3 - r.pd_cpu_time_per_node) < 1e-6
