"""Tests for the batch-size knee recommendation (§4.2.4)."""

import pytest

from repro.rocc import SimulationConfig, recommend_batch_size


def cfg(**kw):
    base = dict(nodes=2, sampling_period=5_000.0, duration=2_000_000.0, seed=71)
    base.update(kw)
    return SimulationConfig(**base)


def test_validation():
    with pytest.raises(ValueError, match="CF anchor"):
        recommend_batch_size(cfg(), candidates=[2, 4])
    with pytest.raises(ValueError, match="threshold"):
        recommend_batch_size(cfg(), candidates=[1, 2],
                             marginal_gain_threshold=0.0)
    with pytest.raises(ValueError, match="duration"):
        recommend_batch_size(
            cfg(duration=200_000.0), candidates=[1, 64]
        )


def test_recommends_past_cf():
    rec = recommend_batch_size(cfg(), candidates=[1, 2, 4, 8, 16, 32])
    assert rec.batch_size > 1
    assert rec.overhead_reduction > 0.3
    assert "knee" in rec.reason or "marginal" in rec.reason


def test_points_cover_all_candidates():
    rec = recommend_batch_size(cfg(), candidates=[1, 2, 8])
    assert [p.batch_size for p in rec.points] == [1, 2, 8]
    assert rec.cf_overhead == rec.points[0].pd_cpu_utilization


def test_overhead_monotone_non_increasing_along_sweep():
    rec = recommend_batch_size(cfg(), candidates=[1, 2, 4, 8, 16, 32])
    utils = [p.pd_cpu_utilization for p in rec.points]
    # Allow tiny noise, but the trend must be downward overall.
    assert utils[-1] < 0.6 * utils[0]


def test_latency_ceiling_limits_batch():
    # Total latency ~ b x T / 2; a 30 ms ceiling at T = 5 ms caps b near 12.
    rec = recommend_batch_size(
        cfg(),
        candidates=[1, 2, 4, 8, 16, 32],
        max_latency=30_000.0,
    )
    assert rec.batch_size <= 16
    assert rec.recommended_point.monitoring_latency_total <= 30_000.0


def test_impossible_ceiling_falls_back_to_cf():
    rec = recommend_batch_size(
        cfg(), candidates=[1, 2, 4], max_latency=1.0
    )
    assert rec.batch_size == 1
    assert "ceiling" in rec.reason


def test_recommendation_reproducible():
    a = recommend_batch_size(cfg(), candidates=[1, 2, 4, 8])
    b = recommend_batch_size(cfg(), candidates=[1, 2, 4, 8])
    assert a.batch_size == b.batch_size
    assert [p.pd_cpu_utilization for p in a.points] == [
        p.pd_cpu_utilization for p in b.points
    ]
