"""Focused tests of the aggregated mode's phantom-traffic construction."""

import pytest

from repro.rocc import (
    Architecture,
    ForwardingTopology,
    SimulationConfig,
)
from repro.rocc.aggregate import AggregatedParadynISSystem


def cfg(**kw):
    base = dict(
        architecture=Architecture.MPP, nodes=16, duration=2_000_000.0,
        sampling_period=10_000.0, batch_size=4, seed=41,
    )
    base.update(kw)
    return SimulationConfig(**base)


def test_phantom_arrival_rate_matches_superposition():
    """Main receives ≈ n · apps/T samples per second in total (averaged
    over replications; one 2-second window has ±7 % Poisson noise)."""
    rates = [
        AggregatedParadynISSystem(cfg(replication=i)).run().received_throughput
        for i in range(4)
    ]
    expected_rate = 16 * 1 / 0.010  # samples per second
    assert sum(rates) / len(rates) == pytest.approx(expected_rate, rel=0.07)


def test_phantom_batches_have_full_size():
    system = AggregatedParadynISSystem(cfg())
    sizes = []
    original = system.main.deliver

    def spy(batch):
        sizes.append(len(batch.samples))
        original(batch)

    # Rewire: the phantom stream binds main.deliver at call time via the
    # closure argument, so patch the attribute before running.
    system.main.deliver = spy
    # The detailed daemon's uplink was captured at construction; only
    # phantom deliveries flow through the patched attribute... patch the
    # daemon's too for completeness.
    system.daemons[0].deliver_up = spy
    system.daemons[0].merge_deliver = spy
    system.run()
    assert sizes and all(s == 4 for s in sizes)


def test_phantom_sample_ages_are_staggered():
    """Samples in a phantom batch are backdated by the sampling period
    so the accumulation component of total latency is realistic."""
    system = AggregatedParadynISSystem(cfg(batch_size=8))
    batch = system._make_phantom_batch(node=1)
    ages = [system.env.now - s.created_at for s in batch.samples]
    # Oldest first, spaced ~one period apart (clamped at t=0 here).
    assert ages == sorted(ages, reverse=True)
    assert len(batch.samples) == 8


def test_phantom_total_latency_close_to_full_sim():
    from repro.rocc import simulate

    full = simulate(cfg(nodes=8))
    aggr = AggregatedParadynISSystem(cfg(nodes=8)).run()
    assert aggr.monitoring_latency_total == pytest.approx(
        full.monitoring_latency_total, rel=0.3
    )


def test_tree_phantoms_feed_detailed_inbox():
    merges = [
        AggregatedParadynISSystem(
            cfg(forwarding=ForwardingTopology.TREE, replication=i)
        ).run().merges_total
        for i in range(4)
    ]
    # Average merge arrivals per node: lambda * (n-1)/n over the run.
    lam_batches_per_s = (1 / 0.010) / 4  # apps/T/b
    expected = lam_batches_per_s * (16 - 1) / 16 * 2.0  # over 2 s
    assert sum(merges) / len(merges) == pytest.approx(expected, rel=0.25)


def test_nodes_must_be_positive():
    with pytest.raises(ValueError):
        AggregatedParadynISSystem(cfg(nodes=0))
