"""Tests for the round-robin CPU scheduler with quantum."""

import pytest

from repro.des import Environment
from repro.rocc import ProcessorSharingCPU, RoundRobinCPU
from repro.workload import ProcessType

APP = ProcessType.APPLICATION
PD = ProcessType.PARADYN_DAEMON


def test_validation(env):
    with pytest.raises(ValueError):
        RoundRobinCPU(env, n_cpus=0)
    with pytest.raises(ValueError):
        RoundRobinCPU(env, quantum=0)


def test_single_job_runs_to_completion(env):
    cpu = RoundRobinCPU(env, quantum=10_000)
    done = []

    def proc(env):
        yield cpu.execute(2_500, APP)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [2_500.0]
    assert cpu.busy_time(APP) == 2_500.0


def test_zero_length_request_completes_immediately(env):
    cpu = RoundRobinCPU(env)
    ev = cpu.execute(0.0, APP)
    assert ev.triggered


def test_long_job_time_sliced(env):
    """A 25k job with quantum 10k shares the CPU with a short job that
    arrives mid-run: the short job gets a slice after one quantum."""
    cpu = RoundRobinCPU(env, quantum=10_000)
    log = []

    def long_job(env):
        yield cpu.execute(25_000, APP)
        log.append(("long", env.now))

    def short_job(env):
        yield env.timeout(1_000)
        yield cpu.execute(2_000, PD)
        log.append(("short", env.now))

    env.process(long_job(env))
    env.process(short_job(env))
    env.run()
    # Long runs [0,10k); short runs [10k,12k); long resumes [12k, 27k).
    assert log == [("short", 12_000.0), ("long", 27_000.0)]


def test_round_robin_fairness_two_long_jobs(env):
    cpu = RoundRobinCPU(env, quantum=10_000)
    log = []

    def job(env, name, amount):
        yield cpu.execute(amount, APP)
        log.append((name, env.now))

    env.process(job(env, "a", 30_000))
    env.process(job(env, "b", 30_000))
    env.run()
    # Interleaved quanta: a finishes at 50k (a,b,a,b,a), b at 60k.
    assert log == [("a", 50_000.0), ("b", 60_000.0)]


def test_two_cpus_run_in_parallel(env):
    cpu = RoundRobinCPU(env, n_cpus=2, quantum=10_000)
    done = []

    def job(env, name):
        yield cpu.execute(5_000, APP)
        done.append((name, env.now))

    env.process(job(env, "a"))
    env.process(job(env, "b"))
    env.run()
    assert done == [("a", 5_000.0), ("b", 5_000.0)]


def test_busy_accounting_by_owner(env):
    cpu = RoundRobinCPU(env, quantum=10_000)

    def proc(env):
        yield cpu.execute(3_000, APP)
        yield cpu.execute(1_000, PD)

    env.process(proc(env))
    env.run()
    assert cpu.busy_time(APP) == 3_000.0
    assert cpu.busy_time(PD) == 1_000.0
    assert cpu.busy_time(ProcessType.OTHER) == 0.0


def test_utilization(env):
    cpu = RoundRobinCPU(env, quantum=10_000)

    def proc(env):
        yield cpu.execute(4_000, APP)

    env.process(proc(env))
    env.run(until=10_000)
    assert cpu.utilization() == pytest.approx(0.4)


def test_utilization_multi_cpu(env):
    cpu = RoundRobinCPU(env, n_cpus=2, quantum=10_000)

    def proc(env):
        yield cpu.execute(4_000, APP)

    env.process(proc(env))
    env.process(proc(env))
    env.run(until=10_000)
    assert cpu.utilization() == pytest.approx(0.4)  # 8k busy over 2*10k


def test_work_conservation_many_jobs(env):
    """Total busy time equals total demand; the makespan is bounded by
    work/capacity from below (no free lunch) and by work/capacity plus
    one job's demand from above (RR cannot split a single job across
    CPUs, so one processor may idle in the tail)."""
    cpu = RoundRobinCPU(env, n_cpus=2, quantum=1_000)
    amounts = [1_500, 2_500, 700, 4_300, 900, 100]

    def job(env, a):
        yield cpu.execute(a, APP)

    for a in amounts:
        env.process(job(env, a))
    env.run()
    assert cpu.busy_time(APP) == pytest.approx(sum(amounts))
    lower = sum(amounts) / 2
    assert lower - 1e-9 <= env.now <= lower + max(amounts) + 1e-9


def test_queue_length_visible(env):
    cpu = RoundRobinCPU(env, quantum=10_000)

    def job(env):
        yield cpu.execute(20_000, APP)

    for _ in range(3):
        env.process(job(env))
    env.run(until=100)
    assert cpu.queue_length == 2  # one running, two queued


def test_processor_sharing_completion_time(env):
    """Two equal PS jobs on one CPU both finish at 2x their demand."""
    cpu = ProcessorSharingCPU(env, n_cpus=1)
    done = []

    def job(env, name):
        yield cpu.execute(10_000, APP)
        done.append((name, env.now))

    env.process(job(env, "a"))
    env.process(job(env, "b"))
    env.run()
    assert done[0][1] == pytest.approx(20_000.0)
    assert done[1][1] == pytest.approx(20_000.0)
    assert cpu.busy_time(APP) == pytest.approx(20_000.0)


def test_processor_sharing_staggered_arrivals(env):
    cpu = ProcessorSharingCPU(env, n_cpus=1)
    done = []

    def first(env):
        yield cpu.execute(10_000, APP)
        done.append(("first", env.now))

    def second(env):
        yield env.timeout(5_000)
        yield cpu.execute(2_500, PD)
        done.append(("second", env.now))

    env.process(first(env))
    env.process(second(env))
    env.run()
    # first alone [0,5k) does 5k; shared until second done:
    # second needs 2.5k at rate 1/2 -> done at 10k; first then has 2.5k
    # left, finishing at 12.5k.
    assert done == [("second", 10_000.0), ("first", 12_500.0)]
