"""Statistical validation of the resource models against queueing theory.

These tests drive the ROCC substrate with Poisson arrivals and compare
measured means with closed-form M/M/1 results — the strongest available
correctness oracle for the CPU scheduler and the FIFO network.  All
runs are seeded; tolerances cover the residual Monte-Carlo noise.
"""

import numpy as np
import pytest

from repro.des import Environment, Tally
from repro.rocc import FIFONetwork, RoundRobinCPU
from repro.rocc.cpu import ProcessorSharingCPU
from repro.workload import ProcessType

APP = ProcessType.APPLICATION


def poisson_source(env, rate_per_us, service_mean, submit, sojourns, rng, n_max):
    """Generate Poisson arrivals, each timing its sojourn."""

    def customer(env, service):
        start = env.now
        yield submit(service)
        sojourns.observe(env.now - start)

    def source(env):
        for _ in range(n_max):
            yield env.timeout(rng.exponential(1.0 / rate_per_us))
            env.process(customer(env, float(rng.exponential(service_mean))))

    env.process(source(env))


def run_queue(make_submit, lam, mu_mean, n=6000, seed=8):
    env = Environment()
    rng = np.random.default_rng(seed)
    sojourns = Tally("sojourn")
    submit = make_submit(env)
    poisson_source(env, lam, mu_mean, submit, sojourns, rng, n)
    env.run()
    return sojourns


class TestFIFONetworkAgainstMM1:
    # Heavy traffic (rho = 0.8) has large small-sample variance, hence
    # the looser tolerance there.
    @pytest.mark.parametrize("rho,rel", [(0.3, 0.08), (0.6, 0.12), (0.8, 0.3)])
    def test_mean_sojourn(self, rho, rel):
        """M/M/1 FIFO: E[T] = 1 / (mu - lambda)."""
        mu_mean = 100.0  # service mean, µs
        lam = rho / mu_mean

        def make_submit(env):
            net = FIFONetwork(env)
            return lambda s: net.transfer(s, APP)

        sojourns = run_queue(make_submit, lam, mu_mean)
        expected = 1.0 / (1.0 / mu_mean - lam)
        assert sojourns.mean == pytest.approx(expected, rel=rel)


class TestRoundRobinAgainstPS:
    @pytest.mark.parametrize("rho", [0.4, 0.7])
    def test_small_quantum_approaches_processor_sharing(self, rho):
        """M/M/1-PS: E[T] = 1/(mu - lambda); RR with quantum << service
        mean converges to PS."""
        mu_mean = 100.0
        lam = rho / mu_mean

        def make_submit(env):
            cpu = RoundRobinCPU(env, n_cpus=1, quantum=5.0)
            return lambda s: cpu.execute(s, APP)

        sojourns = run_queue(make_submit, lam, mu_mean, n=5000)
        expected = 1.0 / (1.0 / mu_mean - lam)
        assert sojourns.mean == pytest.approx(expected, rel=0.15)

    def test_exact_ps_matches_formula(self):
        mu_mean, rho = 100.0, 0.6
        lam = rho / mu_mean

        def make_submit(env):
            cpu = ProcessorSharingCPU(env, n_cpus=1)
            return lambda s: cpu.execute(s, APP)

        sojourns = run_queue(make_submit, lam, mu_mean, n=5000)
        expected = 1.0 / (1.0 / mu_mean - lam)
        assert sojourns.mean == pytest.approx(expected, rel=0.15)

    def test_huge_quantum_is_fifo(self):
        """Quantum >> every service time degenerates RR to FIFO, whose
        M/M/1 sojourn equals PS's in the mean (both 1/(mu-lambda))."""
        mu_mean, rho = 100.0, 0.5
        lam = rho / mu_mean

        def make_submit(env):
            cpu = RoundRobinCPU(env, n_cpus=1, quantum=1e9)
            return lambda s: cpu.execute(s, APP)

        sojourns = run_queue(make_submit, lam, mu_mean, n=5000)
        assert sojourns.mean == pytest.approx(
            1.0 / (1.0 / mu_mean - lam), rel=0.15
        )


class TestUtilizationLawOnSimulator:
    def test_cpu_utilization_matches_offered_load(self):
        """U = X · D on the round-robin CPU under Poisson load."""
        env = Environment()
        rng = np.random.default_rng(4)
        cpu = RoundRobinCPU(env, n_cpus=1, quantum=10_000.0)
        lam, mean = 1 / 400.0, 120.0  # rho = 0.3

        def source(env):
            for _ in range(4000):
                yield env.timeout(rng.exponential(1.0 / lam))
                cpu.execute(float(rng.exponential(mean)), APP)

        env.process(source(env))
        env.run()
        measured = cpu.busy_time(APP) / env.now
        assert measured == pytest.approx(lam * mean, rel=0.08)

    def test_littles_law_on_fifo_queue(self):
        """L = lambda · W on the FIFO network's waiting line."""
        env = Environment()
        rng = np.random.default_rng(6)
        net = FIFONetwork(env)
        lam, mean = 1 / 150.0, 100.0  # rho = 2/3
        waits = Tally("wait")
        area = [0.0, 0.0]  # time-integral of queue length, last update

        n_customers = 6000
        # Observation horizon comfortably covering arrivals + drain; the
        # tracker must terminate or env.run() never would.
        horizon = n_customers / lam * 1.3
        ticks = int(horizon / 50.0)

        def customer(env, service):
            start = env.now
            yield net.transfer(service, APP)
            waits.observe(env.now - start)

        def tracker(env):
            for _ in range(ticks):
                yield env.timeout(50.0)
                area[0] += (net.queue_length + net.in_flight.value) * 50.0
            area[1] = env.now

        def source(env):
            for _ in range(n_customers):
                yield env.timeout(rng.exponential(1.0 / lam))
                env.process(customer(env, float(rng.exponential(mean))))

        env.process(source(env))
        env.process(tracker(env))
        env.run()
        L = area[0] / area[1]
        # Effective arrival rate over the observation window.
        lam_eff = waits.count / area[1]
        W = waits.mean
        assert L == pytest.approx(lam_eff * W, rel=0.12)
