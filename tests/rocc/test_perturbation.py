"""Tests for the perturbation-analysis module."""

import pytest

from repro.rocc import SimulationConfig, measure_perturbation


def cfg(**kw):
    base = dict(nodes=2, duration=2_000_000.0, sampling_period=20_000.0,
                batch_size=1, seed=61)
    base.update(kw)
    return SimulationConfig(**base)


def test_requires_instrumented_config():
    with pytest.raises(ValueError):
        measure_perturbation(cfg(instrumented=False))


def test_report_fields_consistent():
    report = measure_perturbation(cfg())
    assert report.baseline.samples_generated == 0
    assert report.instrumented.samples_generated > 0
    assert 0 <= report.app_progress_ratio <= 1.001
    assert report.slowdown_percent == pytest.approx(
        100 * (1 - report.app_progress_ratio)
    )


def test_light_instrumentation_perturbs_little():
    report = measure_perturbation(cfg(sampling_period=100_000.0, batch_size=32))
    assert report.slowdown_percent < 2.0


def test_heavy_instrumentation_perturbs_more():
    light = measure_perturbation(cfg(sampling_period=100_000.0, batch_size=32))
    heavy = measure_perturbation(cfg(sampling_period=1_000.0, batch_size=1))
    assert heavy.slowdown_percent > light.slowdown_percent
    assert heavy.slowdown_percent > 2.0


def test_bf_perturbs_less_than_cf():
    cf = measure_perturbation(cfg(sampling_period=2_000.0, batch_size=1))
    bf = measure_perturbation(cfg(sampling_period=2_000.0, batch_size=32))
    assert bf.slowdown_percent < cf.slowdown_percent


def test_indirect_component_from_pipe_blocking():
    """A tiny pipe at a fast sampling rate adds indirect perturbation
    (the app blocks on writes) beyond the direct CPU theft."""
    blocked = measure_perturbation(
        cfg(sampling_period=1_000.0, pipe_capacity=4, duration=3_000_000.0)
    )
    roomy = measure_perturbation(
        cfg(sampling_period=1_000.0, pipe_capacity=10_000,
            duration=3_000_000.0)
    )
    assert blocked.instrumented.pipe_blocked_puts > 0
    assert blocked.slowdown_percent > roomy.slowdown_percent


def test_summary_renders():
    report = measure_perturbation(cfg())
    text = report.summary()
    assert "slowdown" in text and "direct" in text and "indirect" in text


def test_paper_motivating_range_reachable():
    """§1: instrumentation degrades applications '10% to more than 50%'
    in measurement studies — aggressive settings reproduce that order."""
    report = measure_perturbation(
        cfg(sampling_period=500.0, batch_size=1, duration=3_000_000.0,
            app_processes_per_node=2)
    )
    assert report.slowdown_percent > 8.0
