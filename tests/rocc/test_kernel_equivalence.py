"""Fast-path kernel equivalence: full-model results are bit-identical.

The DES fast path (holds, event pooling, inlined dispatch) claims
*exact* equivalence with the generic kernel, not statistical closeness.
These tests run the same ROCC configurations under both kernels
(``REPRO_DES_FASTPATH`` toggled between fresh environments) and require
every :class:`SimulationResults` field to match bit for bit.
"""

import pytest

from repro.experiments.engine import results_equal
from repro.faults import DaemonCrash, FaultPlan, NetworkFault, RecoveryPolicy
from repro.rocc import Architecture, SimulationConfig, simulate


def _both_kernels(monkeypatch, config):
    monkeypatch.setenv("REPRO_DES_FASTPATH", "1")
    fast = simulate(config)
    monkeypatch.setenv("REPRO_DES_FASTPATH", "0")
    generic = simulate(config)
    return fast, generic


def test_now_results_bit_identical(monkeypatch):
    cfg = SimulationConfig(nodes=4, duration=2_000_000.0)
    fast, generic = _both_kernels(monkeypatch, cfg)
    assert fast.samples_received > 0
    assert results_equal(fast, generic)


def test_smp_results_bit_identical(monkeypatch):
    cfg = SimulationConfig(
        architecture=Architecture.SMP,
        nodes=4,
        app_processes_per_node=4,
        daemons=2,
        duration=2_000_000.0,
    )
    fast, generic = _both_kernels(monkeypatch, cfg)
    assert fast.samples_received > 0
    assert results_equal(fast, generic)


def test_fault_injected_results_bit_identical(monkeypatch):
    plan = FaultPlan(
        (
            DaemonCrash(node=0, at=600_000.0, restart_after=300_000.0),
            NetworkFault(loss_probability=0.1),
        )
    )
    cfg = SimulationConfig(
        nodes=2,
        duration=2_000_000.0,
        sampling_period=20_000.0,
        include_pvmd=False,
        include_other=False,
        faults=plan,
        recovery=RecoveryPolicy(max_retries=2),
        seed=11,
    )
    fast, generic = _both_kernels(monkeypatch, cfg)
    assert fast.daemon_crashes == 1
    assert results_equal(fast, generic)


def test_batching_results_bit_identical(monkeypatch):
    cfg = SimulationConfig(nodes=2, batch_size=8, duration=2_000_000.0)
    fast, generic = _both_kernels(monkeypatch, cfg)
    assert fast.batches_received > 0
    assert results_equal(fast, generic)


@pytest.mark.parametrize("arch", [Architecture.NOW, Architecture.MPP])
def test_percentiles_populated_and_ordered(monkeypatch, arch):
    monkeypatch.setenv("REPRO_DES_FASTPATH", "1")
    r = simulate(
        SimulationConfig(architecture=arch, nodes=2, duration=2_000_000.0)
    )
    assert r.samples_received > 0
    assert (
        0.0
        <= r.monitoring_latency_p50
        <= r.monitoring_latency_p90
        <= r.monitoring_latency_p99
    )


def test_watchdog_step_loop_bit_identical(monkeypatch):
    """A generous max_events budget routes dispatch through the
    watchdog's step() loop; results must not change, under either
    kernel."""
    cfg = SimulationConfig(nodes=2, duration=2_000_000.0, seed=5)
    monkeypatch.setenv("REPRO_DES_FASTPATH", "1")
    plain = simulate(cfg)
    watched = simulate(cfg.with_(max_events=1_000_000_000))
    assert plain.samples_received > 0
    assert results_equal(plain, watched)
    monkeypatch.setenv("REPRO_DES_FASTPATH", "0")
    generic_watched = simulate(cfg.with_(max_events=1_000_000_000))
    assert results_equal(plain, generic_watched)


def test_wall_clock_watchdog_bit_identical(monkeypatch):
    cfg = SimulationConfig(nodes=2, duration=1_000_000.0, seed=6)
    fast, generic = _both_kernels(
        monkeypatch, cfg.with_(max_wall_seconds=3600.0)
    )
    assert fast.samples_received > 0
    assert results_equal(fast, generic)


def test_active_recovery_bit_identical(monkeypatch):
    """Retries must actually fire: heavy loss + retry budget exercises
    the backoff/retransmission path under both kernels."""
    plan = FaultPlan((NetworkFault(loss_probability=0.4),))
    cfg = SimulationConfig(
        nodes=2,
        duration=2_000_000.0,
        sampling_period=10_000.0,
        include_pvmd=False,
        include_other=False,
        faults=plan,
        recovery=RecoveryPolicy(max_retries=3, backoff_base=500.0),
        seed=13,
    )
    fast, generic = _both_kernels(monkeypatch, cfg)
    assert fast.retransmissions > 0  # the recovery path really ran
    assert fast.samples_received > 0
    assert results_equal(fast, generic)


def test_recovery_with_watchdog_bit_identical(monkeypatch):
    """Fault plan + active recovery + watchdog all at once — the
    fully-instrumented dispatch path on the busiest model."""
    plan = FaultPlan(
        (
            DaemonCrash(node=1, at=500_000.0, restart_after=200_000.0),
            NetworkFault(loss_probability=0.3),
        )
    )
    cfg = SimulationConfig(
        nodes=2,
        duration=2_000_000.0,
        sampling_period=10_000.0,
        include_pvmd=False,
        include_other=False,
        faults=plan,
        recovery=RecoveryPolicy(max_retries=2),
        max_events=1_000_000_000,
        seed=21,
    )
    fast, generic = _both_kernels(monkeypatch, cfg)
    assert fast.daemon_crashes == 1
    assert fast.retransmissions > 0
    assert results_equal(fast, generic)
