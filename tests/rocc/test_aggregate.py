"""Tests for the aggregated large-n mode vs the full simulation."""

import pytest

from repro.rocc import (
    Architecture,
    ForwardingTopology,
    SimulationConfig,
    simulate,
    simulate_aggregated,
)


def mpp(**kw):
    base = dict(
        architecture=Architecture.MPP,
        nodes=8,
        duration=3_000_000.0,
        sampling_period=20_000.0,
        batch_size=8,
        seed=17,
    )
    base.update(kw)
    return SimulationConfig(**base)


def test_agrees_with_full_simulation_on_pd_overhead():
    cfg = mpp()
    full = simulate(cfg)
    aggr = simulate_aggregated(cfg)
    assert aggr.pd_cpu_time_per_node == pytest.approx(
        full.pd_cpu_time_per_node, rel=0.1
    )


def test_agrees_on_app_utilization():
    cfg = mpp()
    full = simulate(cfg)
    aggr = simulate_aggregated(cfg)
    assert aggr.app_cpu_utilization_per_node == pytest.approx(
        full.app_cpu_utilization_per_node, rel=0.05
    )


def test_agrees_on_main_cpu_within_tolerance():
    cfg = mpp()
    full = simulate(cfg)
    aggr = simulate_aggregated(cfg)
    assert aggr.main_cpu_time == pytest.approx(full.main_cpu_time, rel=0.35)


def test_agrees_on_total_latency():
    cfg = mpp()
    full = simulate(cfg)
    aggr = simulate_aggregated(cfg)
    assert aggr.monitoring_latency_total == pytest.approx(
        full.monitoring_latency_total, rel=0.25
    )


def test_reports_true_node_count():
    r = simulate_aggregated(mpp(nodes=256))
    assert r.nodes == 256
    assert "aggregated" in r.config_summary
    assert "n=256" in r.config_summary


def test_main_load_scales_with_phantom_nodes():
    small = simulate_aggregated(mpp(nodes=8))
    large = simulate_aggregated(mpp(nodes=64))
    assert large.main_cpu_time > 4 * small.main_cpu_time
    # Per-node daemon work is unchanged.
    assert large.pd_cpu_time_per_node == pytest.approx(
        small.pd_cpu_time_per_node, rel=0.05
    )


def test_single_node_has_no_phantoms():
    r = simulate_aggregated(mpp(nodes=1))
    full = simulate(mpp(nodes=1))
    assert r.samples_generated == full.samples_generated


def test_tree_mode_merges_at_detailed_node():
    r = simulate_aggregated(mpp(nodes=64, forwarding=ForwardingTopology.TREE))
    assert r.merges_total > 0
    direct = simulate_aggregated(mpp(nodes=64))
    assert r.pd_cpu_time_per_node > direct.pd_cpu_time_per_node


def test_tree_mode_does_not_double_count_main():
    tree = simulate_aggregated(mpp(nodes=64, forwarding=ForwardingTopology.TREE))
    direct = simulate_aggregated(mpp(nodes=64))
    assert tree.samples_received == pytest.approx(direct.samples_received, rel=0.1)


def test_uninstrumented_aggregate_has_no_phantom_traffic():
    r = simulate_aggregated(mpp(nodes=64, instrumented=False))
    assert r.samples_generated == 0
    assert r.samples_received == 0
    assert r.main_cpu_time == 0.0


def test_shared_network_aggregation_warns():
    import warnings

    from repro.rocc import Architecture

    cfg = SimulationConfig(
        architecture=Architecture.NOW, nodes=8, duration=200_000.0, seed=1
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        simulate_aggregated(cfg)
    assert any("shared" in str(w.message) for w in caught)


def test_contention_free_aggregation_does_not_warn():
    import warnings

    cfg = mpp(duration=200_000.0)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        simulate_aggregated(cfg)
    assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]


def test_aggregated_much_faster_at_scale():
    import time

    cfg = mpp(nodes=64, duration=1_000_000.0)
    t0 = time.time()
    simulate_aggregated(cfg)
    aggr_time = time.time() - t0
    t0 = time.time()
    simulate(cfg)
    full_time = time.time() - t0
    assert aggr_time < full_time / 3
