"""Tests for the Metrics accumulator and SimulationResults container."""

import math

import pytest

from repro.rocc.metrics import Metrics, SimulationResults


class TestMetrics:
    def test_initial_state(self):
        m = Metrics()
        assert m.samples_generated == 0
        assert m.samples_received == 0
        assert math.isnan(m.latency_total.mean)

    def test_note_forward_accumulates(self):
        m = Metrics()
        m.note_forward(0, 5)
        m.note_forward(0, 3)
        m.note_forward(2, 1)
        assert m.forwarded_by_node == {0: 8, 2: 1}
        assert m.forward_calls_by_node == {0: 2, 2: 1}

    def test_note_receipt_updates_latencies(self):
        m = Metrics()
        m.note_receipt(now=150.0, created_at=50.0, ready_at=120.0)
        assert m.samples_received == 1
        assert m.latency_total.mean == 100.0
        assert m.latency_forwarding.mean == 30.0

    def test_note_merge(self):
        m = Metrics()
        m.note_merge(3)
        m.note_merge(3)
        assert m.merges_by_node == {3: 2}

    def test_reset(self):
        m = Metrics()
        m.note_forward(0, 5)
        m.note_receipt(10.0, 0.0, 0.0)
        m.reset()
        assert m.samples_received == 0
        assert m.forwarded_by_node == {}


class TestEpochFiltering:
    def test_pre_epoch_receipt_not_counted(self):
        m = Metrics()
        m.reset(now=100.0)
        assert m.note_receipt(now=150.0, created_at=50.0, ready_at=120.0) is False
        assert m.samples_received == 0
        assert m.note_receipt(now=150.0, created_at=100.0, ready_at=120.0) is True
        assert m.samples_received == 1

    def test_note_drop_samples_filters_by_epoch(self):
        class FakeSample:
            def __init__(self, created_at):
                self.created_at = created_at

        m = Metrics()
        m.reset(now=100.0)
        m.note_drop_samples(0, [FakeSample(50.0), FakeSample(150.0)], "loss")
        assert m.samples_dropped == 1
        assert m.drops_by_reason == {"loss": 1}


class TestLatencyPercentiles:
    def test_empty_is_nan(self):
        ps = Metrics().latency_percentiles()
        assert all(math.isnan(v) for v in ps.values())

    def test_values_match_numpy(self):
        import numpy as np

        m = Metrics()
        for i in range(100):
            m.note_receipt(now=float(i), created_at=0.0, ready_at=0.0)
        ps = m.latency_percentiles()
        raw = [float(i) for i in range(100)]
        assert ps[90.0] == pytest.approx(np.percentile(raw, 90.0))

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            Metrics().latency_percentiles(qs=(50.0, 101.0))

    def test_rejects_tally_observed_behind_raw_series(self):
        m = Metrics()
        m.latency_forwarding.observe(5.0)  # bypasses note_receipt
        with pytest.raises(ValueError, match="never saw"):
            m.latency_percentiles()

    def test_rejects_desynced_series(self):
        m = Metrics()
        m.note_receipt(now=10.0, created_at=0.0, ready_at=5.0)
        _ = m.latency_forwarding  # flush
        m.latency_forwarding.observe(7.0)  # extra direct observation
        with pytest.raises(ValueError, match="out of sync"):
            m.latency_percentiles()

    def test_rejects_non_finite_latency(self):
        m = Metrics()
        m.note_receipt(now=math.inf, created_at=0.0, ready_at=0.0)
        with pytest.raises(ValueError, match="non-finite"):
            m.latency_percentiles()

    def test_setter_restarts_raw_series(self):
        from repro.des.monitor import Tally

        m = Metrics()
        m.note_receipt(now=10.0, created_at=0.0, ready_at=5.0)
        m.latency_forwarding = Tally("replacement")
        # The raw series belonging to the replaced tally is gone: no
        # stale percentiles, and new receipts stay in sync.
        ps = m.latency_percentiles()
        assert all(math.isnan(v) for v in ps.values())
        m.note_receipt(now=20.0, created_at=0.0, ready_at=12.0)
        assert m.latency_percentiles()[50.0] == 8.0
        assert m.latency_forwarding.count == 1


def make_results(**kw):
    base = dict(
        config_summary="test",
        duration=2_000_000.0,
        nodes=4,
        pd_cpu_time_per_node=40_000.0,
        main_cpu_time=100_000.0,
    )
    base.update(kw)
    return SimulationResults(**base)


class TestSimulationResults:
    def test_seconds_conversions(self):
        r = make_results()
        assert r.duration_seconds == 2.0
        assert r.pd_cpu_seconds_per_node == 0.04
        assert r.main_cpu_seconds == 0.1

    def test_is_cpu_seconds_per_node(self):
        r = make_results()
        assert r.is_cpu_seconds_per_node == pytest.approx(
            (40_000.0 + 100_000.0 / 4) / 1e6
        )

    def test_latency_ms_conversions(self):
        r = make_results(
            monitoring_latency_forwarding=1500.0,
            monitoring_latency_total=250_000.0,
        )
        assert r.monitoring_latency_forwarding_ms == 1.5
        assert r.monitoring_latency_total_ms == 250.0

    def test_delivery_ratio(self):
        r = make_results(samples_generated=200, samples_received=180)
        assert r.delivery_ratio == pytest.approx(0.9)

    def test_delivery_ratio_nan_without_samples(self):
        r = make_results()
        assert math.isnan(r.delivery_ratio)


class TestStreamingLatency:
    """Past ``raw_cap`` the recorder switches to O(1)-memory estimators."""

    def _fill(self, m, values):
        for i, v in enumerate(values):
            now = 1000.0 + i
            m.note_receipt(now, now - 2 * v, now - v)

    def test_raw_series_stays_capped(self):
        m = Metrics()
        m.raw_cap = 64
        self._fill(m, [float(i % 37 + 1) for i in range(500)])
        assert len(m._lat_fwd_raw) == 64
        assert len(m._lat_total_raw) == 64
        assert m.latency_forwarding.count == 500
        assert m.latency_total.count == 500

    def test_streaming_percentiles_close_to_exact(self):
        import numpy as np

        rng = np.random.default_rng(11)
        data = list(rng.lognormal(mean=2.0, sigma=0.8, size=20_000))
        exact = Metrics()
        self._fill(exact, data)
        streaming = Metrics()
        streaming.raw_cap = 256
        self._fill(streaming, data)
        pe = exact.latency_percentiles()
        ps = streaming.latency_percentiles()
        for q in (50.0, 90.0):
            assert ps[q] == pytest.approx(pe[q], rel=0.05)
        assert ps[99.0] == pytest.approx(pe[99.0], rel=0.15)

    def test_streaming_mean_is_exact(self):
        data = [float(i % 91 + 1) for i in range(3000)]
        exact = Metrics()
        self._fill(exact, data)
        streaming = Metrics()
        streaming.raw_cap = 128
        self._fill(streaming, data)
        assert streaming.latency_forwarding.mean == pytest.approx(
            exact.latency_forwarding.mean
        )
        assert streaming.latency_total.mean == pytest.approx(
            exact.latency_total.mean
        )

    def test_noncanonical_percentile_uses_reservoir(self):
        m = Metrics()
        m.raw_cap = 64
        self._fill(m, [float(i % 101 + 1) for i in range(2000)])
        p = m.latency_percentiles(qs=(75.0,))
        assert 1.0 <= p[75.0] <= 101.0

    def test_desync_still_detected_in_streaming_mode(self):
        m = Metrics()
        m.raw_cap = 32
        self._fill(m, [float(i + 1) for i in range(100)])
        m.latency_forwarding.observe(5.0)  # bypasses note_receipt
        with pytest.raises(ValueError):
            m.latency_percentiles()


class TestMerge:
    """Cross-LP fragment folding used by the parallel kernel."""

    def test_counters_and_node_counters_sum(self):
        a, b = Metrics(), Metrics()
        a.samples_generated = 10
        b.samples_generated = 3
        a.note_forward(0, 5)
        b.note_forward(0, 2)
        b.note_forward(4, 7)
        a.note_merge(1)
        b.note_merge(1)
        a.pipe_blocked_time = 1.5
        b.pipe_blocked_time = 0.25
        b.note_drop(4, 2, "queue_full")
        a.merge(b)
        assert a.samples_generated == 13
        assert a.forwarded_by_node == {0: 7, 4: 7}
        assert a.merges_by_node == {1: 2}
        assert a.pipe_blocked_time == 1.75
        assert a.samples_dropped == 2
        assert a.drops_by_reason == {"queue_full": 2}

    def test_latency_recorders_adopted_from_receipt_side(self):
        main, node = Metrics(), Metrics()
        node.samples_generated = 4
        main.note_receipt(now=150.0, created_at=50.0, ready_at=120.0)
        main.note_receipt(now=200.0, created_at=120.0, ready_at=180.0)
        merged = Metrics()
        merged.merge(node)
        merged.merge(main)
        assert merged.samples_received == 2
        assert merged.latency_total.mean == 90.0
        assert merged.samples_generated == 4

    def test_both_sides_with_receipts_raises(self):
        a, b = Metrics(), Metrics()
        a.note_receipt(10.0, 0.0, 5.0)
        b.note_receipt(20.0, 0.0, 15.0)
        with pytest.raises(ValueError, match="main-process LP"):
            a.merge(b)

    def test_epoch_mismatch_raises(self):
        a, b = Metrics(), Metrics()
        b.reset(now=100.0)
        with pytest.raises(ValueError, match="epoch"):
            a.merge(b)

    def test_merge_preserves_epoch_after_shared_warmup(self):
        a, b = Metrics(), Metrics()
        a.reset(now=100.0)
        b.reset(now=100.0)
        b.samples_generated = 1
        a.merge(b)
        assert a.epoch == 100.0
        assert a.samples_generated == 1
