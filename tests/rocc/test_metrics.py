"""Tests for the Metrics accumulator and SimulationResults container."""

import math

import pytest

from repro.rocc.metrics import Metrics, SimulationResults


class TestMetrics:
    def test_initial_state(self):
        m = Metrics()
        assert m.samples_generated == 0
        assert m.samples_received == 0
        assert math.isnan(m.latency_total.mean)

    def test_note_forward_accumulates(self):
        m = Metrics()
        m.note_forward(0, 5)
        m.note_forward(0, 3)
        m.note_forward(2, 1)
        assert m.forwarded_by_node == {0: 8, 2: 1}
        assert m.forward_calls_by_node == {0: 2, 2: 1}

    def test_note_receipt_updates_latencies(self):
        m = Metrics()
        m.note_receipt(now=150.0, created_at=50.0, ready_at=120.0)
        assert m.samples_received == 1
        assert m.latency_total.mean == 100.0
        assert m.latency_forwarding.mean == 30.0

    def test_note_merge(self):
        m = Metrics()
        m.note_merge(3)
        m.note_merge(3)
        assert m.merges_by_node == {3: 2}

    def test_reset(self):
        m = Metrics()
        m.note_forward(0, 5)
        m.note_receipt(10.0, 0.0, 0.0)
        m.reset()
        assert m.samples_received == 0
        assert m.forwarded_by_node == {}


def make_results(**kw):
    base = dict(
        config_summary="test",
        duration=2_000_000.0,
        nodes=4,
        pd_cpu_time_per_node=40_000.0,
        main_cpu_time=100_000.0,
    )
    base.update(kw)
    return SimulationResults(**base)


class TestSimulationResults:
    def test_seconds_conversions(self):
        r = make_results()
        assert r.duration_seconds == 2.0
        assert r.pd_cpu_seconds_per_node == 0.04
        assert r.main_cpu_seconds == 0.1

    def test_is_cpu_seconds_per_node(self):
        r = make_results()
        assert r.is_cpu_seconds_per_node == pytest.approx(
            (40_000.0 + 100_000.0 / 4) / 1e6
        )

    def test_latency_ms_conversions(self):
        r = make_results(
            monitoring_latency_forwarding=1500.0,
            monitoring_latency_total=250_000.0,
        )
        assert r.monitoring_latency_forwarding_ms == 1.5
        assert r.monitoring_latency_total_ms == 250.0

    def test_delivery_ratio(self):
        r = make_results(samples_generated=200, samples_received=180)
        assert r.delivery_ratio == pytest.approx(0.9)

    def test_delivery_ratio_nan_without_samples(self):
        r = make_results()
        assert math.isnan(r.delivery_ratio)
