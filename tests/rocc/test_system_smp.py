"""Integration tests of the SMP simulation."""

import pytest

from repro.rocc import Architecture, SimulationConfig, simulate


def smp(**kw):
    base = dict(
        architecture=Architecture.SMP,
        nodes=4,
        app_processes_per_node=4,  # total apps on the SMP
        duration=1_500_000.0,
        sampling_period=20_000.0,
        seed=11,
    )
    base.update(kw)
    return SimulationConfig(**base)


def test_samples_flow(env=None):
    r = simulate(smp())
    # 4 apps x 1.5 s / 20 ms = 300 samples.
    assert r.samples_generated == pytest.approx(300, abs=8)
    assert r.samples_received > 0.9 * r.samples_generated


def test_apps_share_pooled_cpus():
    r = simulate(smp(nodes=2, app_processes_per_node=8))
    # 8 always-ready apps on 2 CPUs: both CPUs nearly saturated.
    assert r.app_cpu_utilization_per_node > 0.85


def test_multiple_daemons_split_load():
    r1 = simulate(smp(daemons=1))
    r4 = simulate(smp(daemons=4))
    assert r1.throughput_per_daemon == pytest.approx(
        4 * r4.throughput_per_daemon, rel=0.15
    )


def test_is_utilization_includes_main():
    r = simulate(smp())
    assert r.is_cpu_utilization_per_node > r.pd_cpu_utilization_per_node


def test_bf_reduces_is_overhead_on_smp():
    cf = simulate(smp(batch_size=1))
    bf = simulate(smp(batch_size=32))
    assert bf.pd_cpu_time_per_node < 0.5 * cf.pd_cpu_time_per_node
    assert bf.main_cpu_time < 0.5 * cf.main_cpu_time


def test_single_daemon_saturates_at_many_cpus():
    """§4.3.2: one daemon cannot keep up once many CPUs generate samples
    under CF; four daemons can."""
    kw = dict(nodes=32, app_processes_per_node=32, duration=1_500_000.0,
              sampling_period=40_000.0, batch_size=1, seed=21,
              architecture=Architecture.SMP)
    one = simulate(SimulationConfig(daemons=1, **kw))
    four = simulate(SimulationConfig(daemons=4, **kw))
    demand = 32 / 0.040  # samples per second
    total_one = one.throughput_per_daemon * 1
    total_four = four.throughput_per_daemon * 4
    assert total_one < 0.5 * demand
    assert total_four > 1.5 * total_one


def test_one_daemon_suffices_under_bf():
    """§4.3.2: with batching, one daemon keeps up at 16 CPUs."""
    kw = dict(nodes=16, app_processes_per_node=16, duration=2_000_000.0,
              sampling_period=40_000.0, batch_size=32, seed=21,
              architecture=Architecture.SMP)
    one = simulate(SimulationConfig(daemons=1, **kw))
    demand = 16 / 0.040
    assert one.throughput_per_daemon > 0.85 * demand


def test_bus_shared_by_apps_and_daemons():
    r = simulate(smp())
    assert r.network_utilization > r.pd_network_utilization > 0


def test_small_period_fills_pipes_and_blocks_apps():
    """§4.3.3: at very small sampling periods the pipes fill and the
    application blocks on sample writes."""
    r = simulate(
        smp(
            nodes=2,
            app_processes_per_node=8,
            sampling_period=1_000.0,
            pipe_capacity=16,
            duration=2_000_000.0,
        )
    )
    assert r.pipe_blocked_puts > 0
    assert r.pipe_blocked_time > 0
