"""Tests for SimulationConfig validation and derived properties."""

import pytest

from repro.rocc import (
    Architecture,
    DaemonCostModel,
    ForwardingTopology,
    MainCostModel,
    NetworkMode,
    SimulationConfig,
)


def test_defaults_are_paper_typical():
    cfg = SimulationConfig()
    assert cfg.sampling_period == 40_000.0
    assert cfg.batch_size == 1
    assert cfg.is_cf and not cfg.is_bf
    assert cfg.workload.cpu_quantum == 10_000.0


def test_policy_flags():
    assert SimulationConfig(batch_size=1).is_cf
    assert SimulationConfig(batch_size=2).is_bf


@pytest.mark.parametrize(
    "kw",
    [
        {"nodes": 0},
        {"cpus_per_node": 0},
        {"sampling_period": 0},
        {"batch_size": 0},
        {"batch_flush_timeout": 0.0},
        {"batch_flush_timeout": -1.0},
        {"daemons": 0},
        {"pipe_capacity": 0},
        {"central_ingress": 0.0},
        {"central_ingress": -5.0},
        {"app_processes_per_node": 0},
        {"duration": 0},
        {"warmup": -1},
        {"warmup": 2e6, "duration": 1e6},
        {"max_events": 0},
        {"max_wall_seconds": 0.0},
    ],
)
def test_validation_rejects(kw):
    with pytest.raises(ValueError):
        SimulationConfig(**kw)


def test_validation_rejects_bad_cpu_quantum():
    from dataclasses import replace

    from repro.workload.parameters import WorkloadParameters

    wl = replace(WorkloadParameters(), cpu_quantum=0.0)
    with pytest.raises(ValueError, match="cpu_quantum"):
        SimulationConfig(workload=wl)
    wl = replace(WorkloadParameters(), cpu_quantum=-10.0)
    with pytest.raises(ValueError, match="cpu_quantum"):
        SimulationConfig(workload=wl)


def test_validation_rejects_negative_cost_rates():
    with pytest.raises(ValueError, match="per_sample_batch_cpu"):
        SimulationConfig(daemon_costs=DaemonCostModel(per_sample_batch_cpu=-1.0))
    with pytest.raises(ValueError, match="per_sample_network"):
        SimulationConfig(daemon_costs=DaemonCostModel(per_sample_network=-1.0))


def test_tree_requires_mpp():
    with pytest.raises(ValueError):
        SimulationConfig(
            architecture=Architecture.NOW, forwarding=ForwardingTopology.TREE
        )
    SimulationConfig(
        architecture=Architecture.MPP, forwarding=ForwardingTopology.TREE
    )  # fine


def test_network_mode_defaults():
    assert (
        SimulationConfig(architecture=Architecture.NOW).effective_network_mode
        is NetworkMode.SHARED
    )
    assert (
        SimulationConfig(architecture=Architecture.SMP).effective_network_mode
        is NetworkMode.SHARED
    )
    assert (
        SimulationConfig(architecture=Architecture.MPP).effective_network_mode
        is NetworkMode.CONTENTION_FREE
    )


def test_network_mode_override():
    cfg = SimulationConfig(
        architecture=Architecture.NOW, network_mode=NetworkMode.CONTENTION_FREE
    )
    assert cfg.effective_network_mode is NetworkMode.CONTENTION_FREE


def test_with_creates_modified_copy():
    base = SimulationConfig(nodes=4)
    mod = base.with_(nodes=8, batch_size=16)
    assert mod.nodes == 8 and mod.batch_size == 16
    assert base.nodes == 4 and base.batch_size == 1


def test_measured_duration():
    cfg = SimulationConfig(duration=10e6, warmup=2e6)
    assert cfg.measured_duration == 8e6


def test_daemon_cost_model_cf_total_matches_table2():
    """Collection + forwarding means must sum to Table 2's 267 µs so the
    CF policy's per-sample daemon cost stays faithful."""
    costs = DaemonCostModel()
    assert costs.collection_cpu.mean + costs.forward_cpu.mean == pytest.approx(267.0)


def test_main_cost_model_reduction_ratio():
    """The decomposition must give roughly the measured ~80 % main-process
    reduction at batch 32."""
    costs = MainCostModel()
    cf = costs.receive_cpu.mean + costs.per_sample_cpu.mean
    bf = (costs.receive_cpu.mean + 32 * costs.per_sample_cpu.mean) / 32
    assert 1 - bf / cf == pytest.approx(0.8, abs=0.05)
