"""Integration tests of the MPP simulation: tree forwarding, barriers."""

import pytest

from repro.rocc import (
    Architecture,
    ForwardingTopology,
    SimulationConfig,
    simulate,
)


def mpp(**kw):
    base = dict(
        architecture=Architecture.MPP,
        nodes=8,
        duration=2_000_000.0,
        sampling_period=20_000.0,
        batch_size=8,
        seed=13,
    )
    base.update(kw)
    return SimulationConfig(**base)


def test_direct_no_merges():
    r = simulate(mpp(forwarding=ForwardingTopology.DIRECT))
    assert r.merges_total == 0


def test_tree_merges_happen():
    r = simulate(mpp(forwarding=ForwardingTopology.TREE))
    assert r.merges_total > 0


def test_tree_delivers_all_samples():
    direct = simulate(mpp(forwarding=ForwardingTopology.DIRECT))
    tree = simulate(mpp(forwarding=ForwardingTopology.TREE))
    assert tree.samples_received == pytest.approx(
        direct.samples_received, rel=0.1
    )
    assert tree.samples_received > 0.8 * tree.samples_generated


def test_tree_costs_more_pd_cpu():
    """§4.4.2: merge work raises daemon overhead under tree forwarding."""
    direct = simulate(mpp(forwarding=ForwardingTopology.DIRECT))
    tree = simulate(mpp(forwarding=ForwardingTopology.TREE))
    assert tree.pd_cpu_time_per_node > direct.pd_cpu_time_per_node


def test_tree_latency_comparable_to_direct():
    """§4.4.2: 'the choice of direct or tree forwarding does not affect
    monitoring latency' (at these rates)."""
    direct = simulate(mpp(forwarding=ForwardingTopology.DIRECT))
    tree = simulate(mpp(forwarding=ForwardingTopology.TREE))
    assert tree.monitoring_latency_total == pytest.approx(
        direct.monitoring_latency_total, rel=0.25
    )


def test_tree_samples_hop_counts():
    """Samples relayed through the tree must carry hop counts; with 8
    nodes the deepest leaf is 3 hops from the root."""
    from repro.rocc.system import ParadynISSystem

    system = ParadynISSystem(mpp(forwarding=ForwardingTopology.TREE))
    hops = []
    original = system.main.deliver

    def spy(batch):
        hops.extend(s.hops for s in batch.samples)
        original(batch)

    system.main.deliver = spy
    # Rewire daemons that point at main (node 0 does).
    system.daemons[0].deliver_up = spy
    system.daemons[0].merge_deliver = spy
    system.run()
    assert max(hops) == 3
    assert min(hops) == 0


def test_contention_free_network_default():
    r = simulate(mpp())
    # Offered load far below capacity; utilization well-defined.
    assert 0 <= r.pd_network_utilization < 1


def test_barriers_reduce_app_cpu_time():
    free = simulate(mpp(barrier_period=None))
    barriered = simulate(mpp(barrier_period=5_000.0))
    assert barriered.app_cpu_time_per_node < free.app_cpu_time_per_node
    assert barriered.barrier_rounds > 0
    assert barriered.barrier_wait_time > 0


def test_more_frequent_barriers_hurt_more():
    coarse = simulate(mpp(barrier_period=100_000.0))
    fine = simulate(mpp(barrier_period=2_000.0))
    assert fine.app_cpu_utilization_per_node < coarse.app_cpu_utilization_per_node
    assert fine.barrier_rounds > coarse.barrier_rounds


def test_barrier_rounds_complete():
    """All participants arrive each round: rounds x parties cycles."""
    r = simulate(mpp(nodes=4, barrier_period=50_000.0))
    assert r.barrier_rounds > 5


def test_pd_overhead_insensitive_to_node_count():
    """Direct IS overhead is per-node-local (Figure 18a): doubling nodes
    leaves the per-node daemon cost roughly unchanged."""
    small = simulate(mpp(nodes=4))
    large = simulate(mpp(nodes=16))
    assert large.pd_cpu_time_per_node == pytest.approx(
        small.pd_cpu_time_per_node, rel=0.2
    )
