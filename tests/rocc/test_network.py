"""Tests for the interconnect models (FIFO shared vs contention-free)."""

import pytest

from repro.rocc import ContentionFreeNetwork, FIFONetwork
from repro.workload import ProcessType

APP = ProcessType.APPLICATION
PD = ProcessType.PARADYN_DAEMON


def test_fifo_serializes_transfers(env):
    net = FIFONetwork(env)
    done = []

    def proc(env, name, amount):
        yield net.transfer(amount, APP)
        done.append((name, env.now))

    env.process(proc(env, "a", 100))
    env.process(proc(env, "b", 50))
    env.run()
    assert done == [("a", 100.0), ("b", 150.0)]


def test_contention_free_transfers_overlap(env):
    net = ContentionFreeNetwork(env)
    done = []

    def proc(env, name, amount):
        yield net.transfer(amount, APP)
        done.append((name, env.now))

    env.process(proc(env, "a", 100))
    env.process(proc(env, "b", 50))
    env.run()
    assert done == [("b", 50.0), ("a", 100.0)]


@pytest.mark.parametrize("cls", [FIFONetwork, ContentionFreeNetwork])
def test_busy_accounting(env, cls):
    net = cls(env)

    def proc(env):
        yield net.transfer(30, APP)
        yield net.transfer(20, PD)

    env.process(proc(env))
    env.run()
    assert net.busy_time(APP) == 30.0
    assert net.busy_time(PD) == 20.0
    assert net.total_busy_time() == 50.0
    assert net.transfers == 2


@pytest.mark.parametrize("cls", [FIFONetwork, ContentionFreeNetwork])
def test_zero_amount_completes_immediately(env, cls):
    net = cls(env)
    hits = []
    ev = net.transfer(0.0, APP, payload="p", deliver=hits.append)
    assert ev.triggered
    assert hits == ["p"]


def test_deliver_callback_at_completion_time(env):
    net = FIFONetwork(env)
    deliveries = []

    def proc(env):
        yield net.transfer(40, PD, payload="batch", deliver=lambda b: deliveries.append((b, env.now)))

    env.process(proc(env))
    env.run()
    assert deliveries == [("batch", 40.0)]


def test_fifo_utilization(env):
    net = FIFONetwork(env)

    def proc(env):
        yield net.transfer(25, APP)

    env.process(proc(env))
    env.run(until=100)
    assert net.utilization() == pytest.approx(0.25)


def test_fifo_queue_length(env):
    net = FIFONetwork(env)

    def proc(env):
        yield net.transfer(1000, APP)

    for _ in range(3):
        env.process(proc(env))
    env.run(until=10)
    assert net.queue_length == 2


def test_contention_free_offered_load_can_exceed_one(env):
    net = ContentionFreeNetwork(env)

    def proc(env):
        yield net.transfer(100, APP)

    for _ in range(5):
        env.process(proc(env))
    env.run(until=101)
    assert net.total_busy_time() == pytest.approx(500.0)
    assert net.utilization(now=100.0) == pytest.approx(5.0)


def test_fire_and_forget_transfer_still_accounts(env):
    """Transfers issued without yielding (phantom traffic) complete."""
    net = FIFONetwork(env)
    net.transfer(10, PD)
    net.transfer(5, PD)
    env.run()
    assert net.total_busy_time() == 15.0
