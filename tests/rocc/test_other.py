"""Tests for the background load (PVM daemon, other processes).

Table 2 fixes their arrival and service distributions; on an otherwise
idle node their long-run CPU utilizations must match the offered load
(utilization law), which validates both the actors and the accounting.
"""

import pytest

from repro.rocc import SimulationConfig, simulate
from repro.workload import ProcessType


def idle_node(**kw):
    """A node whose only activity is the background load."""
    base = dict(
        nodes=1,
        duration=20_000_000.0,  # 20 s for tight statistics
        instrumented=False,
        seed=91,
    )
    base.update(kw)
    cfg = SimulationConfig(**base)
    # Silence the application by giving it nothing to do is not possible
    # (it always alternates), so measure utilizations directly instead.
    return cfg


def busy(result, owner):
    return sum(v for (n, o), v in result.cpu_busy.items() if o is owner)


def _bare_context(duration):
    """A context with no competing load at all."""
    from repro.des import Environment
    from repro.rocc.cpu import RoundRobinCPU
    from repro.rocc.metrics import Metrics
    from repro.rocc.network import ContentionFreeNetwork
    from repro.rocc.node import NodeContext
    from repro.variates.streams import StreamFactory

    env = Environment()
    ctx = NodeContext(
        env=env,
        node_id=0,
        cpu=RoundRobinCPU(env, quantum=10_000.0),
        network=ContentionFreeNetwork(env),
        metrics=Metrics(),
        config=SimulationConfig(duration=duration, seed=91),
        streams=StreamFactory(seed=91),
    )
    return env, ctx


def test_pvmd_cpu_load_matches_table2_uncontended():
    """On an idle CPU the PVM daemon's utilization is its offered load:
    ρ ≈ E[S] / (E[A] + E[S] + E[net]) with the closed-loop arrival
    semantics (the daemon draws the next gap after finishing)."""
    from repro.rocc.other import PVMDaemon

    duration = 30_000_000.0
    env, ctx = _bare_context(duration)
    PVMDaemon(ctx)
    env.run(until=duration)
    util = ctx.cpu.busy_time(ProcessType.PVM_DAEMON) / duration
    expected = 294.0 / (6485.0 + 294.0 + 58.0)
    assert util == pytest.approx(expected, rel=0.1)


def test_other_cpu_load_matches_table2_uncontended():
    from repro.rocc.other import OtherProcesses

    duration = 30_000_000.0
    env, ctx = _bare_context(duration)
    OtherProcesses(ctx)
    env.run(until=duration)
    util = ctx.cpu.busy_time(ProcessType.OTHER) / duration
    expected = 367.0 / (31_485.0 + 367.0)
    assert util == pytest.approx(expected, rel=0.15)


def test_background_load_thins_under_contention():
    """On a busy node the closed-loop PVM daemon waits for the CPU, so
    its realized utilization drops below the uncontended load — the
    documented arrival-thinning semantics of repro.rocc.other."""
    r = simulate(idle_node())
    util = busy(r, ProcessType.PVM_DAEMON) / r.duration
    uncontended = 294.0 / (6485.0 + 294.0 + 58.0)
    assert 0.5 * uncontended < util < uncontended


def test_background_can_be_disabled():
    r = simulate(idle_node(include_pvmd=False, include_other=False))
    assert busy(r, ProcessType.PVM_DAEMON) == 0.0
    assert busy(r, ProcessType.OTHER) == 0.0


def test_background_share_reduces_application_cpu():
    with_bg = simulate(idle_node(duration=5_000_000.0))
    without = simulate(
        idle_node(duration=5_000_000.0, include_pvmd=False, include_other=False)
    )
    assert with_bg.app_cpu_utilization_per_node < without.app_cpu_utilization_per_node


def test_other_network_requests_are_rare():
    """Table 2's network inter-arrival for other processes is ~5.6 s, so
    a 20 s run sees only a handful of requests."""
    from repro.rocc.system import ParadynISSystem

    system = ParadynISSystem(idle_node())
    system.run()
    other_net = system.network.busy_by_owner.get(ProcessType.OTHER, 0.0)
    # A handful of ~92 µs requests at most.
    assert other_net < 50 * 92.0
