"""Tests for adaptive IS management (overhead regulation)."""

import pytest

from repro.rocc import (
    AdaptiveSampler,
    ParadynISSystem,
    RegulatorConfig,
    SimulationConfig,
    simulate,
)


def adaptive_cfg(**kw):
    base = dict(
        nodes=2,
        sampling_period=1_000.0,  # aggressive: ~26 % static overhead
        batch_size=1,
        duration=8_000_000.0,
        seed=44,
        adaptive=RegulatorConfig(budget=0.01),
    )
    base.update(kw)
    return SimulationConfig(**base)


class TestRegulatorConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            {"budget": 0.0},
            {"budget": 1.0},
            {"control_interval": 0},
            {"low_water": 1.0},
            {"backoff": 1.0},
            {"recovery": 1.0},
            {"min_period": 0},
            {"min_period": 100.0, "max_period": 50.0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            RegulatorConfig(**kw)

    def test_defaults_sane(self):
        cfg = RegulatorConfig()
        assert 0 < cfg.budget < 1
        assert cfg.backoff > 1 > cfg.recovery


class TestAdaptiveSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSampler(period=0)

    def test_mutable(self):
        s = AdaptiveSampler(period=1000.0)
        s.period = 2000.0
        assert s.period == 2000.0


class TestRegulationEndToEnd:
    def test_overhead_brought_down_vs_static(self):
        adaptive = simulate(adaptive_cfg())
        static = simulate(adaptive_cfg(adaptive=None))
        assert (
            adaptive.pd_cpu_utilization_per_node
            < 0.25 * static.pd_cpu_utilization_per_node
        )

    def test_period_backed_off(self):
        system = ParadynISSystem(adaptive_cfg())
        system.run()
        final = system.apps[0].sampler_state.period
        assert final > 5 * 1_000.0  # grew far beyond the initial period

    def test_decisions_recorded(self):
        system = ParadynISSystem(adaptive_cfg(duration=3_000_000.0))
        system.run()
        reg = system.regulators[0]
        assert len(reg.decisions) >= 10
        assert any(d.acted for d in reg.decisions)
        # Decision log is time-ordered and internally consistent.
        times = [d.time for d in reg.decisions]
        assert times == sorted(times)
        for d in reg.decisions:
            if d.new_period != d.old_period:
                assert d.acted

    def test_respects_period_bounds(self):
        cfg = adaptive_cfg(
            adaptive=RegulatorConfig(budget=0.0001, max_period=50_000.0)
        )
        system = ParadynISSystem(cfg)
        system.run()
        assert system.apps[0].sampler_state.period <= 50_000.0

    def test_under_budget_workload_keeps_rate(self):
        """A 40 ms sampling period is far below a 5 % budget: the
        regulator may only speed sampling up (recovery), never slow it."""
        cfg = adaptive_cfg(
            sampling_period=40_000.0,
            adaptive=RegulatorConfig(budget=0.05, min_period=20_000.0),
        )
        system = ParadynISSystem(cfg)
        system.run()
        assert system.apps[0].sampler_state.period <= 40_000.0

    def test_recovery_speeds_sampling_up(self):
        cfg = adaptive_cfg(
            sampling_period=200_000.0,  # very light
            adaptive=RegulatorConfig(budget=0.05, min_period=10_000.0),
            duration=10_000_000.0,
        )
        system = ParadynISSystem(cfg)
        system.run()
        assert system.apps[0].sampler_state.period < 200_000.0

    def test_adapt_batch_grows_batch_first(self):
        cfg = adaptive_cfg(
            adaptive=RegulatorConfig(budget=0.01, adapt_batch=True, max_batch=64)
        )
        system = ParadynISSystem(cfg)
        system.run()
        assert system.daemons[0].batch_size > 1

    def test_per_node_regulators(self):
        system = ParadynISSystem(adaptive_cfg(nodes=3, duration=1_000_000.0))
        assert len(system.regulators) == 3

    def test_smp_gets_single_regulator(self):
        from repro.rocc import Architecture

        cfg = adaptive_cfg(
            architecture=Architecture.SMP,
            nodes=4,
            app_processes_per_node=4,
            duration=1_000_000.0,
        )
        system = ParadynISSystem(cfg)
        assert len(system.regulators) == 1

    def test_static_config_has_no_regulators(self):
        system = ParadynISSystem(adaptive_cfg(adaptive=None, duration=500_000.0))
        assert system.regulators == []
        assert system.apps[0].sampler_state is None

    def test_regulated_run_still_delivers_samples(self):
        r = simulate(adaptive_cfg())
        assert r.samples_received > 100
