"""Focused tests of the application process and the cyclic barrier."""

import pytest

from repro.des import Environment
from repro.rocc import (
    ApplicationProcess,
    CyclicBarrier,
    SamplePipe,
    SimulationConfig,
)
from repro.rocc.cpu import RoundRobinCPU
from repro.rocc.metrics import Metrics
from repro.rocc.network import ContentionFreeNetwork
from repro.rocc.node import NodeContext
from repro.variates.distributions import Deterministic
from repro.variates.streams import StreamFactory
from repro.workload import ProcessType, WorkloadParameters


def make_ctx(env, config):
    return NodeContext(
        env=env,
        node_id=0,
        cpu=RoundRobinCPU(env, quantum=config.workload.cpu_quantum),
        network=ContentionFreeNetwork(env),
        metrics=Metrics(),
        config=config,
        streams=StreamFactory(seed=1),
    )


def deterministic_workload():
    return WorkloadParameters(
        app_cpu=Deterministic(1_000.0),
        app_network=Deterministic(500.0),
    )


def test_alternates_compute_and_communicate():
    env = Environment()
    cfg = SimulationConfig(
        workload=deterministic_workload(), instrumented=False
    )
    ctx = make_ctx(env, cfg)
    ApplicationProcess(ctx, pid=0, pipe=None)
    env.run(until=15_000)
    # Each 1500 µs cycle: 1000 CPU + 500 network.
    assert ctx.cpu.busy_time(ProcessType.APPLICATION) == pytest.approx(10_000.0)
    assert ctx.network.busy_time(ProcessType.APPLICATION) == pytest.approx(
        4_500.0, abs=600.0
    )
    assert ctx.metrics.app_cycles == 9


def test_sampler_generates_on_schedule():
    env = Environment()
    cfg = SimulationConfig(
        workload=deterministic_workload(), sampling_period=10_000.0
    )
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env)
    ApplicationProcess(ctx, pid=0, pipe=pipe)
    env.run(until=100_001)
    assert ctx.metrics.samples_generated == 10


def test_samples_carry_creation_time():
    env = Environment()
    cfg = SimulationConfig(
        workload=deterministic_workload(), sampling_period=10_000.0
    )
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env)
    ApplicationProcess(ctx, pid=0, pipe=pipe)
    collected = []

    def reader(env):
        while True:
            s = yield pipe.get()
            collected.append(s.created_at)

    env.process(reader(env))
    # Samples are emitted at the application's next cycle boundary, so
    # run slightly past the last sampling tick.
    env.run(until=52_000)
    assert collected == [10_000.0, 20_000.0, 30_000.0, 40_000.0, 50_000.0]


def test_not_instrumented_generates_nothing():
    env = Environment()
    cfg = SimulationConfig(
        workload=deterministic_workload(), instrumented=False
    )
    ctx = make_ctx(env, cfg)
    ApplicationProcess(ctx, pid=0, pipe=SamplePipe(env))
    env.run(until=100_000)
    assert ctx.metrics.samples_generated == 0


def test_full_pipe_blocks_application():
    env = Environment()
    cfg = SimulationConfig(
        workload=deterministic_workload(),
        sampling_period=1_000.0,
        pipe_capacity=2,
    )
    ctx = make_ctx(env, cfg)
    pipe = SamplePipe(env, per_writer_capacity=2)
    ApplicationProcess(ctx, pid=0, pipe=pipe)
    env.run(until=100_000)
    # Nobody drains the pipe: the app must have stalled long ago.
    assert pipe.is_full
    assert ctx.cpu.busy_time(ProcessType.APPLICATION) < 20_000.0


class TestCyclicBarrier:
    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            CyclicBarrier(env, 0)

    def test_releases_when_all_arrive(self):
        env = Environment()
        barrier = CyclicBarrier(env, 3)
        released = []

        def party(env, name, delay):
            yield env.timeout(delay)
            yield barrier.arrive()
            released.append((name, env.now))

        env.process(party(env, "a", 1))
        env.process(party(env, "b", 5))
        env.process(party(env, "c", 3))
        env.run()
        # All release together when the last party arrives (t = 5).
        assert sorted(released) == [("a", 5.0), ("b", 5.0), ("c", 5.0)]
        assert barrier.rounds == 1

    def test_reusable_across_rounds(self):
        env = Environment()
        barrier = CyclicBarrier(env, 2)
        log = []

        def party(env, name, delays):
            for d in delays:
                yield env.timeout(d)
                yield barrier.arrive()
                log.append((name, env.now))

        env.process(party(env, "a", [1, 1]))
        env.process(party(env, "b", [4, 2]))
        env.run()
        assert barrier.rounds == 2
        assert log == [("a", 4.0), ("b", 4.0), ("a", 6.0), ("b", 6.0)]

    def test_waiting_count(self):
        env = Environment()
        barrier = CyclicBarrier(env, 3)

        def party(env):
            yield barrier.arrive()

        env.process(party(env))
        env.process(party(env))
        env.run()
        assert barrier.waiting == 2


def test_barrier_truncates_bursts():
    """A CPU burst never crosses a barrier point: with deterministic
    3000 µs bursts and a 1000 µs barrier period every burst is clipped
    to exactly 1000 µs of work between barriers."""
    env = Environment()
    cfg = SimulationConfig(
        workload=WorkloadParameters(
            app_cpu=Deterministic(3_000.0),
            app_network=Deterministic(1.0),
        ),
        barrier_period=1_000.0,
        instrumented=False,
    )
    ctx = make_ctx(env, cfg)
    barrier = CyclicBarrier(env, 1, ctx.metrics)
    ApplicationProcess(ctx, pid=0, pipe=None, barrier=barrier)
    env.run(until=10_010)
    # Work between barrier rounds is exactly the barrier period.
    assert ctx.metrics.barrier_rounds >= 9
    assert ctx.cpu.busy_time(ProcessType.APPLICATION) == pytest.approx(
        ctx.metrics.barrier_rounds * 1_000.0, rel=0.15
    )
