"""Tests for the finite-capacity sample pipe."""

import pytest

from repro.rocc import Sample, SamplePipe


def make_sample(t=0.0):
    return Sample(created_at=t, node=0, pid=0)


def test_validation(env):
    with pytest.raises(ValueError):
        SamplePipe(env, per_writer_capacity=0)
    with pytest.raises(ValueError):
        SamplePipe(env, writers=0)


def test_capacity_scales_with_writers(env):
    pipe = SamplePipe(env, per_writer_capacity=10, writers=3)
    assert pipe.capacity == 30


def test_put_get_roundtrip(env):
    pipe = SamplePipe(env, per_writer_capacity=4)
    got = []

    def writer(env):
        yield pipe.put(make_sample(1.0))

    def reader(env):
        s = yield pipe.get()
        got.append(s.created_at)

    env.process(writer(env))
    env.process(reader(env))
    env.run()
    assert got == [1.0]


def test_full_pipe_blocks_writer_and_charges_blocked_time(env):
    pipe = SamplePipe(env, per_writer_capacity=2)
    events = []

    def writer(env):
        for i in range(3):
            yield pipe.put(make_sample(float(i)))
            events.append(("in", i, env.now))

    def reader(env):
        yield env.timeout(50)
        yield pipe.get()

    env.process(writer(env))
    env.process(reader(env))
    env.run()
    assert events[-1] == ("in", 2, 50.0)
    assert pipe.blocked_puts == 1
    assert pipe.blocked_time == pytest.approx(50.0)


def test_no_block_accounting_when_space(env):
    pipe = SamplePipe(env, per_writer_capacity=8)

    def writer(env):
        yield pipe.put(make_sample())

    env.process(writer(env))
    env.run()
    assert pipe.blocked_puts == 0
    assert pipe.blocked_time == 0.0


def test_is_full_and_len(env):
    pipe = SamplePipe(env, per_writer_capacity=2)

    def writer(env):
        yield pipe.put(make_sample())
        yield pipe.put(make_sample())

    env.process(writer(env))
    env.run()
    assert len(pipe) == 2
    assert pipe.is_full


def test_fifo_order(env):
    pipe = SamplePipe(env, per_writer_capacity=10)
    got = []

    def writer(env):
        for i in range(5):
            yield pipe.put(make_sample(float(i)))

    def reader(env):
        for _ in range(5):
            s = yield pipe.get()
            got.append(s.created_at)

    env.process(writer(env))
    env.process(reader(env))
    env.run()
    assert got == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_reader_blocks_on_empty(env):
    pipe = SamplePipe(env, per_writer_capacity=4)
    got = []

    def reader(env):
        s = yield pipe.get()
        got.append((s.created_at, env.now))

    def writer(env):
        yield env.timeout(30)
        yield pipe.put(make_sample(9.0))

    env.process(reader(env))
    env.process(writer(env))
    env.run()
    assert got == [(9.0, 30.0)]
