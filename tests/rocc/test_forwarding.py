"""Tests for the binary-tree forwarding topology helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rocc import (
    children_indices,
    expected_hops,
    is_leaf,
    parent_index,
    tree_depth,
)


def test_parent_of_root_rejected():
    with pytest.raises(ValueError):
        parent_index(0)


def test_parent_child_relation_small_tree():
    assert parent_index(1) == 0
    assert parent_index(2) == 0
    assert parent_index(3) == 1
    assert parent_index(4) == 1
    assert parent_index(5) == 2


def test_children_indices():
    assert children_indices(0, 7) == [1, 2]
    assert children_indices(2, 7) == [5, 6]
    assert children_indices(3, 7) == []
    assert children_indices(1, 4) == [3]


def test_children_bounds_checked():
    with pytest.raises(ValueError):
        children_indices(7, 7)
    with pytest.raises(ValueError):
        children_indices(-1, 7)


def test_is_leaf():
    assert is_leaf(3, 7)
    assert not is_leaf(0, 7)
    assert is_leaf(0, 1)


def test_tree_depth():
    assert tree_depth(1) == 0
    assert tree_depth(2) == 1
    assert tree_depth(3) == 1
    assert tree_depth(4) == 2
    assert tree_depth(7) == 2
    assert tree_depth(8) == 3
    with pytest.raises(ValueError):
        tree_depth(0)


def test_expected_hops_small():
    # n=3: node0 depth 0, nodes 1-2 depth 1 -> mean 2/3.
    assert expected_hops(3) == pytest.approx(2 / 3)
    assert expected_hops(1) == 0.0


def test_expected_hops_grows_logarithmically():
    assert expected_hops(255) == pytest.approx(
        sum(d * 2**d for d in range(8)) / 255
    )


@given(st.integers(min_value=1, max_value=500))
def test_parent_child_consistency(n):
    """Every non-root node is a child of its parent, and depth(child) =
    depth(parent) + 1."""
    for i in range(1, n):
        p = parent_index(i)
        assert 0 <= p < i
        assert i in children_indices(p, n)


@given(st.integers(min_value=2, max_value=500))
def test_every_node_reaches_root(n):
    for i in range(n):
        j = i
        hops = 0
        while j > 0:
            j = parent_index(j)
            hops += 1
            assert hops <= tree_depth(n)
