"""Tests for the main Paradyn process, incl. the central-ingress stage."""

import pytest

from repro.rocc import Architecture, SimulationConfig, simulate


def mpp(**kw):
    base = dict(
        architecture=Architecture.MPP, nodes=4, duration=2_000_000.0,
        sampling_period=10_000.0, batch_size=1, seed=77,
    )
    base.update(kw)
    return SimulationConfig(**base)


def test_default_receipt_at_delivery():
    r = simulate(mpp())
    assert r.samples_received > 0
    # Without central serialization, latency is small at this load.
    assert r.monitoring_latency_forwarding < 20_000.0


def test_ingress_adds_latency():
    base = simulate(mpp())
    with_ingress = simulate(mpp(central_ingress=500.0))
    assert (
        with_ingress.monitoring_latency_forwarding
        > base.monitoring_latency_forwarding
    )
    # Sample flow is preserved.
    assert with_ingress.samples_received == pytest.approx(
        base.samples_received, rel=0.05
    )


def test_ingress_makes_latency_node_count_sensitive():
    """The Figure-2 single-server buffer: more nodes -> higher central
    arrival rate -> longer queueing at the main process (the effect
    behind the paper's Figure 25 latency attribution)."""
    small = simulate(mpp(nodes=2, central_ingress=800.0))
    large = simulate(mpp(nodes=8, central_ingress=800.0))
    # M/M/1 at the ingress: ~950 µs residence at 2 nodes (ρ=0.16) vs
    # ~2200 µs at 8 nodes (ρ=0.64); the rest of the latency is common.
    assert (
        large.monitoring_latency_forwarding
        - small.monitoring_latency_forwarding
        > 800.0
    )


def test_without_ingress_latency_insensitive_to_nodes():
    small = simulate(mpp(nodes=2))
    large = simulate(mpp(nodes=8))
    assert large.monitoring_latency_forwarding == pytest.approx(
        small.monitoring_latency_forwarding, rel=0.35
    )


def test_saturated_ingress_degrades_gracefully():
    # 4 nodes x 100 samples/s x 3 ms service = 1.2 offered load.
    r = simulate(mpp(central_ingress=3_000.0))
    assert r.samples_received > 0
    # Latency blows up but stays finite within the run.
    assert r.monitoring_latency_forwarding > 50_000.0
