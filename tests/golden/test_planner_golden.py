"""Golden masters for the experiment planner's screening decisions.

The planner's value rests on *which* cells it decides to simulate and
why; a silent change to the trust predicate, the gradient pass, or the
anchor pass would quietly shift every planned experiment.  The
screening stage is purely analytic — no simulation, fully
deterministic — so its decisions for the quick NOW and MPP factorial
designs are snapshotted verbatim (decision, reason, trust flag, and
the analytic utilization that drove it) under ``tests/golden/``.

Intentional policy changes regenerate the snapshots with::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

and the diff is reviewed like any other code change.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.experiments import mpp_exp, now_exp
from repro.planner import screen

GOLDEN_DIR = Path(__file__).parent

REL_TOL = 1e-9

SPECS = {
    "planner_now": now_exp.design_spec,
    "planner_mpp": mpp_exp.design_spec,
}


def snapshot_decisions(name: str) -> dict:
    spec = SPECS[name](quick=True)
    configs = [spec.make(run) for run in spec.design.runs()]
    report = screen(spec.design, configs)
    cells = []
    for d in report.decisions:
        pred = d.prediction
        max_util = pred.max_utilization
        cells.append({
            "index": d.index,
            "label": d.label,
            "simulate": d.simulate,
            "trusted": d.trusted,
            "reason": d.reason,
            "applicable": pred.applicable,
            "saturated": pred.saturated,
            "drop_risk": pred.drop_risk,
            "max_utilization": (
                "inf" if math.isinf(max_util) else max_util
            ),
        })
    return {
        "design": spec.design.labels,
        "pruned": sorted(report.pruned),
        "cells": cells,
    }


def _same(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=0.0)
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(_same(a[k], b[k]) for k in a)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(_same(x, y) for x, y in zip(a, b))
    return a == b


@pytest.mark.parametrize("name", sorted(SPECS))
def test_planner_screening_golden(
    name: str, request: pytest.FixtureRequest
) -> None:
    actual = snapshot_decisions(name)
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-golden"):
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden snapshot {path.name} regenerated")
    assert path.is_file(), (
        f"missing golden snapshot {path}; generate it with "
        "`python -m pytest tests/golden --update-golden`"
    )
    expected = json.loads(path.read_text())
    problems = []
    for exp_cell, act_cell in zip(expected["cells"], actual["cells"]):
        for key in sorted(set(exp_cell) | set(act_cell)):
            if not _same(exp_cell.get(key), act_cell.get(key)):
                problems.append(
                    f"cell {exp_cell.get('index')}: {key} expected "
                    f"{exp_cell.get(key)!r}, got {act_cell.get(key)!r}"
                )
    if expected["pruned"] != actual["pruned"]:
        problems.append(
            f"pruned set drifted: expected {expected['pruned']}, "
            f"got {actual['pruned']}"
        )
    assert not problems, (
        f"planner screening decisions drifted from the golden master "
        f"({name}):\n  " + "\n  ".join(problems)
        + "\nIf the policy change is intentional, regenerate with "
        "`python -m pytest tests/golden --update-golden` and review "
        "the diff."
    )


def test_planner_golden_catches_policy_drift() -> None:
    """A tightened trust threshold must change the snapshot, not pass."""
    from repro.planner import ScreeningPolicy

    spec = SPECS["planner_now"](quick=True)
    configs = [spec.make(run) for run in spec.design.runs()]
    default = screen(spec.design, configs)
    strict = screen(
        spec.design, configs, ScreeningPolicy(trust_utilization=0.0001)
    )
    assert default.pruned, "default policy prunes nothing on the NOW design"
    assert not strict.pruned, (
        "an (absurdly) strict trust threshold still pruned cells"
    )
