"""Golden-master regression suite for the ROCC simulation.

One seeded NOW, SMP, and MPP cell each is snapshotted — every field of
its :class:`~repro.rocc.metrics.SimulationResults` — as JSON under
``tests/golden/``.  Any silent model drift (a cost-model tweak, a
kernel change that perturbs event order, a metrics accounting change)
fails the comparison field by field.

Intentional model changes regenerate the snapshots with::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

and the resulting diff is reviewed like any other code change.
"""

from __future__ import annotations

import json
import math
from dataclasses import fields
from pathlib import Path

import pytest

from repro.rocc.config import (
    Architecture,
    ForwardingTopology,
    SimulationConfig,
)
from repro.rocc.metrics import SimulationResults
from repro.rocc.system import simulate
from repro.variates.distributions import Exponential

GOLDEN_DIR = Path(__file__).parent

#: Floats must match to this relative tolerance — tight enough that any
#: model change trips it, loose enough to survive libm differences
#: across platforms.
REL_TOL = 1e-9

CONFIGS = {
    "now": SimulationConfig(
        architecture=Architecture.NOW,
        nodes=4,
        duration=500_000.0,
        sampling_period=20_000.0,
        batch_size=2,
        seed=7,
    ),
    "smp": SimulationConfig(
        architecture=Architecture.SMP,
        nodes=4,
        app_processes_per_node=4,
        daemons=2,
        duration=500_000.0,
        sampling_period=20_000.0,
        batch_size=1,
        seed=7,
    ),
    "mpp": SimulationConfig(
        architecture=Architecture.MPP,
        nodes=4,
        duration=500_000.0,
        sampling_period=20_000.0,
        batch_size=4,
        forwarding=ForwardingTopology.TREE,
        seed=7,
    ),
}


def _encode(value):
    """JSON-safe encoding: NaN → "NaN", tuple dict keys → strings."""
    if isinstance(value, float):
        return "NaN" if math.isnan(value) else value
    if isinstance(value, dict):
        return {_key(k): _encode(v) for k, v in value.items()}
    return value


def _key(k) -> str:
    if isinstance(k, tuple):
        return "/".join(str(getattr(p, "value", p)) for p in k)
    return str(getattr(k, "value", k))


def snapshot_results(results: SimulationResults) -> dict:
    """Every dataclass field of the results, in JSON-safe form."""
    return {
        f.name: _encode(getattr(results, f.name))
        for f in fields(results)
    }


def compare_snapshots(expected: dict, actual: dict) -> list:
    """Field-by-field diff; empty list means identical."""
    problems = []
    for name in sorted(set(expected) | set(actual)):
        if name not in expected:
            problems.append(f"{name}: new field (regenerate the golden)")
            continue
        if name not in actual:
            problems.append(f"{name}: field removed")
            continue
        if not _same(expected[name], actual[name]):
            problems.append(
                f"{name}: expected {expected[name]!r}, got {actual[name]!r}"
            )
    return problems


def _same(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=0.0)
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(_same(a[k], b[k]) for k in a)
    return a == b


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_golden_master(name: str, request: pytest.FixtureRequest) -> None:
    actual = snapshot_results(simulate(CONFIGS[name]))
    path = golden_path(name)
    if request.config.getoption("--update-golden"):
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden snapshot {path.name} regenerated")
    assert path.is_file(), (
        f"missing golden snapshot {path}; generate it with "
        "`python -m pytest tests/golden --update-golden`"
    )
    expected = json.loads(path.read_text())
    problems = compare_snapshots(expected, actual)
    assert not problems, (
        "simulation results drifted from the golden master "
        f"({name}):\n  " + "\n  ".join(problems)
        + "\nIf the change is intentional, regenerate with "
        "`python -m pytest tests/golden --update-golden` and review "
        "the diff."
    )


def test_golden_catches_cost_model_drift(monkeypatch: pytest.MonkeyPatch) -> None:
    """A perturbed cost model must fail the comparison, not pass silently.

    The daemon cost models are built from ``Exponential`` distributions
    via default factories, so a class-level patch (scaling every draw by
    5%) reaches them all; ``sample_block`` delegates to ``sample``, so
    the fast-path kernel is covered too.
    """
    original = Exponential.sample

    def inflated(self, rng, size=None):
        return original(self, rng, size) * 1.05

    path = golden_path("now")
    if not path.is_file():
        pytest.skip("golden snapshot not generated yet")
    expected = json.loads(path.read_text())

    monkeypatch.setattr(Exponential, "sample", inflated)
    drifted = snapshot_results(simulate(CONFIGS["now"]))
    problems = compare_snapshots(expected, drifted)
    assert problems, "5% cost-model drift went undetected by the golden suite"
    # The drift must show up in the overhead metrics the paper reports,
    # not merely in some incidental counter.
    assert any(p.startswith("pd_cpu_time_per_node") for p in problems)


def test_snapshot_roundtrip_is_deterministic() -> None:
    """Two runs of the same seeded cell snapshot identically."""
    a = snapshot_results(simulate(CONFIGS["now"]))
    b = snapshot_results(simulate(CONFIGS["now"]))
    assert compare_snapshots(a, b) == []
