"""The ``python -m repro.verify`` command-line harness."""

import io

import pytest

from repro.verify.cli import main, run_selftest, run_verification
from repro.verify.report import VerificationReport, Violation


def test_quick_battery_passes(capsys):
    assert main(["--quick", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "all invariants hold" in out
    assert "checks run" in out


def test_selftest_detects_planted_violation():
    buf = io.StringIO()
    assert run_selftest(seed=0, out=buf) == 1
    text = buf.getvalue()
    assert "SELFTEST OK" in text
    assert "conservation.sample_balance" in text


def test_selftest_via_main_exits_nonzero(capsys):
    assert main(["--selftest"]) == 1


def test_run_verification_counts_sections():
    report = run_verification(quick=True, seed=1)
    assert report.ok
    assert report.sections["invariants"] >= 5
    assert report.sections["oplaws"] >= 1
    assert report.sections["differential"] == 10


def test_report_formatting():
    report = VerificationReport()
    report.extend([], section="invariants")
    assert report.ok
    assert "all invariants hold" in report.format()
    report.add(Violation(invariant="x.y", detail="boom", subject="cfg"))
    assert not report.ok
    assert "FAIL x.y [cfg]: boom" in report.format()


def test_mutually_exclusive_modes():
    with pytest.raises(SystemExit):
        main(["--quick", "--full"])
