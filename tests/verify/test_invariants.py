"""Invariant auditors: clean runs pass, tampered results are caught."""

import dataclasses
import math

import pytest

from repro.faults import DaemonCrash, FaultPlan, NetworkFault, RecoveryPolicy
from repro.rocc import Architecture, SimulationConfig, simulate
from repro.verify import audit_results


@pytest.fixture(scope="module")
def clean_run():
    config = SimulationConfig(nodes=2, duration=1_000_000.0,
                              sampling_period=20_000.0, seed=7)
    return config, simulate(config)


def _names(violations):
    return {v.invariant for v in violations}


def test_clean_run_passes(clean_run):
    config, results = clean_run
    assert audit_results(results, config) == []


def test_clean_run_passes_without_config(clean_run):
    _, results = clean_run
    assert audit_results(results) == []


def test_warmup_run_passes():
    config = SimulationConfig(nodes=2, duration=1_000_000.0, warmup=300_000.0,
                              sampling_period=20_000.0, seed=7)
    assert audit_results(simulate(config), config) == []


def test_faulty_run_passes():
    config = SimulationConfig(
        nodes=2, duration=1_500_000.0, warmup=200_000.0,
        sampling_period=20_000.0, seed=11,
        include_pvmd=False, include_other=False,
        faults=FaultPlan((
            DaemonCrash(node=0, at=600_000.0, restart_after=200_000.0),
            NetworkFault(loss_probability=0.1, corruption_probability=0.05),
        )),
        recovery=RecoveryPolicy(max_retries=2),
    )
    assert audit_results(simulate(config), config) == []


def test_smp_and_mpp_pass():
    for arch, extra in (
        (Architecture.SMP, dict(app_processes_per_node=4, daemons=2)),
        (Architecture.MPP, dict()),
    ):
        config = SimulationConfig(architecture=arch, nodes=4,
                                  duration=1_000_000.0, seed=3, **extra)
        assert audit_results(simulate(config), config) == []


def test_detects_conservation_violation(clean_run):
    config, results = clean_run
    broken = dataclasses.replace(
        results,
        samples_received=results.samples_generated + 5,
    )
    assert "conservation.sample_balance" in _names(
        audit_results(broken, config)
    )


def test_detects_negative_counter(clean_run):
    config, results = clean_run
    broken = dataclasses.replace(results, samples_dropped=-1)
    assert "conservation.counter_sign" in _names(audit_results(broken, config))


def test_detects_drop_reason_mismatch(clean_run):
    config, results = clean_run
    broken = dataclasses.replace(
        results,
        samples_dropped=3,
        drops_by_reason={"loss": 1},
        samples_received=results.samples_received - 3,
    )
    assert "conservation.drop_reasons" in _names(audit_results(broken, config))


def test_detects_overcommitted_cpu(clean_run):
    config, results = clean_run
    broken = dataclasses.replace(results, pd_cpu_utilization_per_node=1.2)
    assert "capacity.cpu_utilization" in _names(audit_results(broken, config))


def test_detects_node_busy_over_capacity(clean_run):
    config, results = clean_run
    cpu_busy = dict(results.cpu_busy)
    (node, owner) = next(iter(cpu_busy))
    cpu_busy[(node, owner)] = results.duration * config.cpus_per_node * 2.0
    broken = dataclasses.replace(results, cpu_busy=cpu_busy)
    assert "capacity.node_busy" in _names(audit_results(broken, config))


def test_detects_batches_exceeding_samples(clean_run):
    config, results = clean_run
    broken = dataclasses.replace(
        results, batches_received=results.samples_received + 1
    )
    assert "tally.batches_vs_samples" in _names(audit_results(broken, config))


def test_detects_throughput_mismatch(clean_run):
    config, results = clean_run
    broken = dataclasses.replace(
        results, received_throughput=results.received_throughput * 2.0 + 1.0
    )
    assert "tally.received_throughput" in _names(audit_results(broken, config))


def test_detects_nonmonotone_percentiles(clean_run):
    config, results = clean_run
    broken = dataclasses.replace(
        results,
        monitoring_latency_p50=results.monitoring_latency_p90 + 100.0,
    )
    assert "latency.percentile_monotone" in _names(
        audit_results(broken, config)
    )


def test_detects_missing_percentiles(clean_run):
    config, results = clean_run
    broken = dataclasses.replace(results, monitoring_latency_p90=math.nan)
    assert "latency.percentile_missing" in _names(audit_results(broken, config))


def test_detects_total_below_forwarding_latency(clean_run):
    config, results = clean_run
    broken = dataclasses.replace(
        results,
        monitoring_latency_total=results.monitoring_latency_forwarding / 2.0,
    )
    assert "latency.total_dominates_forwarding" in _names(
        audit_results(broken, config)
    )


def test_detects_faultfree_drops(clean_run):
    config, results = clean_run
    broken = dataclasses.replace(
        results, samples_dropped=2, drops_by_reason={"loss": 2}
    )
    names = _names(audit_results(broken, config))
    assert "faultfree.clean" in names
