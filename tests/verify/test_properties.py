"""Hypothesis properties: random valid configs satisfy every invariant."""

from hypothesis import HealthCheck, given, settings

from repro.rocc.system import simulate
from repro.verify import audit_results, check_fastpath
from repro.verify.properties import run_property_checks, simulation_configs

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_SETTINGS
@given(config=simulation_configs())
def test_random_configs_satisfy_invariants(config):
    violations = audit_results(simulate(config), config)
    assert not violations, "; ".join(str(v) for v in violations)


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=simulation_configs(with_faults=False))
def test_random_configs_fastpath_equivalent(config):
    violations = check_fastpath(config)
    assert not violations, "; ".join(str(v) for v in violations)


def test_programmatic_runner_clean():
    assert run_property_checks(seed=1, max_examples=5,
                               fastpath_examples=2) == []
