"""Operational-law checks: pass on real runs, catch cooked numbers."""

import dataclasses

import pytest

from repro.faults import DaemonCrash, FaultPlan
from repro.rocc import Architecture, NetworkMode, SimulationConfig, simulate
from repro.verify import (
    applicable,
    check_against_analytic,
    check_littles_law,
    check_operational_laws,
    check_utilization_law,
)


@pytest.fixture(scope="module")
def now_run():
    config = SimulationConfig(
        nodes=4, duration=2_000_000.0, seed=9,
        network_mode=NetworkMode.CONTENTION_FREE,
    )
    return config, simulate(config)


def test_applicable_gating():
    base = SimulationConfig(nodes=2)
    assert applicable(base)
    assert not applicable(base.with_(warmup=1000.0))
    assert not applicable(base.with_(barrier_period=100_000.0))
    assert not applicable(base.with_(instrumented=False))
    assert not applicable(base.with_(
        faults=FaultPlan((DaemonCrash(node=0, at=1000.0),))
    ))


def test_clean_now_run_obeys_all_laws(now_run):
    config, results = now_run
    assert check_operational_laws(config, results) == []


@pytest.mark.parametrize("arch,extra", [
    (Architecture.SMP, dict(app_processes_per_node=4, daemons=2)),
    (Architecture.MPP, dict()),
])
def test_other_architectures_obey_laws(arch, extra):
    config = SimulationConfig(architecture=arch, nodes=4,
                              duration=2_000_000.0, seed=4, **extra)
    assert check_operational_laws(config, simulate(config)) == []


def test_batching_run_obeys_laws():
    config = SimulationConfig(nodes=4, batch_size=8, duration=2_000_000.0,
                              seed=6, network_mode=NetworkMode.CONTENTION_FREE)
    assert check_operational_laws(config, simulate(config)) == []


def test_utilization_law_detects_inflated_busy(now_run):
    config, results = now_run
    broken = dataclasses.replace(
        results, pd_cpu_time_per_node=results.pd_cpu_time_per_node * 3.0
    )
    violations = check_utilization_law(config, broken)
    assert any(v.invariant == "oplaw.utilization_pd" for v in violations)


def test_utilization_law_detects_deflated_main(now_run):
    config, results = now_run
    broken = dataclasses.replace(results, main_cpu_time=0.0)
    violations = check_utilization_law(config, broken)
    assert any(v.invariant == "oplaw.utilization_main" for v in violations)


def test_littles_law_detects_impossible_population(now_run):
    config, results = now_run
    # A mean latency of 10 simulated hours implies an in-flight
    # population far beyond every buffer in the model.
    broken = dataclasses.replace(
        results, monitoring_latency_total=3.6e10
    )
    violations = check_littles_law(config, broken)
    assert any(
        v.invariant == "oplaw.littles_population_bound" for v in violations
    )


def test_analytic_agreement_detects_divergence(now_run):
    config, results = now_run
    broken = dataclasses.replace(
        results,
        pd_cpu_utilization_per_node=results.pd_cpu_utilization_per_node * 5.0,
    )
    violations = check_against_analytic(config, broken)
    assert any(
        v.invariant == "oplaw.analytic_utilization" for v in violations
    )
