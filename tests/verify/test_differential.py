"""Differential runners: flipped knobs leave results bit-identical."""

import dataclasses
import math

import pytest

from repro.rocc import SimulationConfig, simulate
from repro.verify import (
    check_bf_flush_noop,
    check_cache,
    check_fastpath,
    check_watchdog,
    check_workers,
    diff_results,
)


@pytest.fixture(scope="module")
def small_config():
    return SimulationConfig(nodes=2, duration=600_000.0,
                            sampling_period=20_000.0, seed=5)


@pytest.fixture(scope="module")
def small_results(small_config):
    return simulate(small_config)


def test_diff_results_identical(small_results):
    assert diff_results(small_results, small_results) == []


def test_diff_results_nan_equals_nan(small_results):
    a = dataclasses.replace(small_results, recovery_latency=math.nan)
    b = dataclasses.replace(small_results, recovery_latency=math.nan)
    assert diff_results(a, b) == []


def test_diff_results_reports_changed_field(small_results):
    changed = dataclasses.replace(
        small_results, samples_received=small_results.samples_received + 1
    )
    diffs = diff_results(small_results, changed)
    assert len(diffs) == 1 and diffs[0].startswith("samples_received")


def test_diff_results_honors_ignore(small_results):
    changed = dataclasses.replace(
        small_results, samples_received=small_results.samples_received + 1
    )
    assert diff_results(small_results, changed,
                        ignore=("samples_received",)) == []


def test_fastpath_equivalence(small_config):
    assert check_fastpath(small_config) == []


def test_watchdog_equivalence(small_config):
    assert check_watchdog(small_config) == []


def test_bf_flush_noop(small_config):
    assert check_bf_flush_noop(small_config) == []


def test_cache_roundtrip(small_config, tmp_path):
    assert check_cache(small_config, cache_root=str(tmp_path)) == []


def test_workers_equivalence(small_config):
    assert check_workers(small_config, repetitions=2) == []


def test_open_workload_checks(small_config):
    from repro.verify import check_open_workload

    assert check_open_workload(small_config) == []
