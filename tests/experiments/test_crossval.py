"""Tests for the analytic-vs-simulation cross-validation artifact."""

import pytest

from repro.experiments import run


@pytest.fixture(scope="module")
def artifact():
    return run("extra_crossvalidation", quick=True)


def test_utilizations_agree_below_saturation(artifact):
    """Flow balance holds: analytic and simulated utilization within a
    few percent at every grid point."""
    for err in artifact.column("util_error_pct"):
        assert err < 8.0


def test_cf_latency_gap_is_systematic(artifact):
    """The analytic model under-predicts CF latency (it omits the CPU
    contention with the application)."""
    rows = zip(
        artifact.column("batch"),
        artifact.column("latency_analytic_ms"),
        artifact.column("latency_sim_ms"),
    )
    for batch, analytic, sim in rows:
        if batch == 1:
            assert sim > analytic


def test_grid_covers_both_policies(artifact):
    assert set(artifact.column("batch")) == {1, 32}
