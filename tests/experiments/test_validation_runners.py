"""Structural tests of the Section-5 validation runners."""

import pytest

from repro.experiments import run
from repro.experiments.validation import workload_for_benchmark


class TestWorkloadForBenchmark:
    def test_pvmbt_is_table2(self):
        wl = workload_for_benchmark("pvmbt")
        assert wl.app_cpu.mean == 2213.0
        assert wl.app_network.mean == 223.0

    def test_pvmis_differs_but_stays_cpu_bound(self):
        wl = workload_for_benchmark("pvmis")
        assert wl.app_cpu.mean != 2213.0
        duty = wl.app_cpu.mean / (wl.app_cpu.mean + wl.app_network.mean)
        assert duty > 0.85

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            workload_for_benchmark("pvmlu")


@pytest.fixture(scope="module")
def fig30():
    return run("figure30", quick=True)


class TestFigure30Structure:
    def test_four_policy_period_cells(self, fig30):
        bars = fig30.find("CPU time")
        assert len(bars.rows) == 4
        assert set(bars.column("policy")) == {"CF", "BF"}
        assert set(bars.column("period_ms")) == {10.0, 30.0}

    def test_cf_costs_more_in_every_cell(self, fig30):
        bars = fig30.find("CPU time")
        by_key = {
            (p, t): (pd, mn)
            for p, t, pd, mn in zip(
                bars.column("policy"), bars.column("period_ms"),
                bars.column("pd_cpu_s"), bars.column("main_cpu_s"),
            )
        }
        for period in (10.0, 30.0):
            assert by_key[("CF", period)][0] > by_key[("BF", period)][0]
            assert by_key[("CF", period)][1] > by_key[("BF", period)][1]

    def test_faster_sampling_costs_more(self, fig30):
        bars = fig30.find("CPU time")
        by_key = {
            (p, t): pd
            for p, t, pd in zip(
                bars.column("policy"), bars.column("period_ms"),
                bars.column("pd_cpu_s"),
            )
        }
        for policy in ("CF", "BF"):
            assert by_key[(policy, 10.0)] > by_key[(policy, 30.0)]

    def test_table7_fractions_sum_to_one(self, fig30):
        for name in ("Pd CPU time", "main CPU time"):
            t = fig30.find(name)
            total = sum(t.column("percent"))
            assert total == pytest.approx(100.0, abs=0.5)
