"""Chaos-harness tests: the resilient engine under injected faults.

Every scenario asserts convergence: whatever the harness kills, hangs,
or corrupts, the resilient engine must end up with results
bit-identical to an undisturbed serial run — the same determinism bar
as the plain engine tests, held under fire.
"""

import os

import pytest

from repro.experiments import (
    CellCache,
    ExperimentEngine,
    ResilientEngine,
    RetryPolicy,
    config_fingerprint,
    results_equal,
)
from repro.experiments.chaos import (
    ChaosKilled,
    ChaosPlan,
    chaos_cell_runner,
    chaos_key,
    corrupt_cache_entry,
    install_chaos,
)
from repro.rocc import SimulationConfig


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(
        nodes=1,
        duration=300_000.0,
        sampling_period=20_000.0,
        include_pvmd=False,
        include_other=False,
        seed=5,
    )


def _reference(cells):
    with ExperimentEngine(workers=1, cache=CellCache(enabled=False)) as eng:
        return eng.run_cells(cells)


def test_chaos_key_is_deadline_insensitive(cfg):
    assert chaos_key(cfg) == chaos_key(cfg.with_(max_wall_seconds=30.0))
    assert chaos_key(cfg) != chaos_key(cfg.with_(seed=6))
    assert chaos_key(cfg) != chaos_key(cfg, aggregated=True)


def test_chaos_plan_claims_each_fault_once(cfg, tmp_path):
    plan = ChaosPlan(state_dir=str(tmp_path))
    assert plan.claim("kill", "abc")
    assert not plan.claim("kill", "abc")  # second attempt runs clean
    assert plan.claim("kill", "def")  # distinct cell, distinct marker
    assert plan.claim("hang", "abc")  # distinct action, distinct marker


def test_chaos_runner_is_picklable(cfg, tmp_path):
    import pickle

    plan = ChaosPlan(state_dir=str(tmp_path), kill_once=("x",))
    runner = chaos_cell_runner(plan)
    assert pickle.loads(pickle.dumps(runner)) is not None


def test_broken_process_pool_mid_batch_recovers(cfg, tmp_path):
    """A worker SIGKILL breaks the pool mid-batch; the engine resets it,
    requeues the collateral, retries the victim, and converges."""
    cells = [cfg.with_(replication=i) for i in range(4)]
    reference = _reference(cells)
    plan = ChaosPlan(
        state_dir=str(tmp_path / "state"),
        kill_once=(chaos_key(cells[1]),),
        parent_pid=os.getpid(),
    )
    with ResilientEngine(
        workers=2, cache=CellCache(enabled=False),
        retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
    ) as engine:
        install_chaos(engine, plan)
        out = engine.run_cells(cells)
    for a, b in zip(reference, out):
        assert results_equal(a, b)
    assert not engine.failure_report.failures
    assert engine.stats.pool_resets >= 1
    assert engine.stats.retries >= 1
    assert "pool reset" in engine.stats.summary()


def test_acceptance_sixteen_cells_three_kills_one_corruption(cfg, tmp_path):
    """The ISSUE acceptance scenario: a 16-cell sweep survives 3
    injected worker kills plus 1 corrupted cache entry and reproduces
    the undisturbed results exactly."""
    cells = [cfg.with_(replication=i) for i in range(16)]
    reference = _reference(cells)

    cache = CellCache(tmp_path / "cache")
    with ExperimentEngine(workers=1, cache=cache) as warm:
        warm.run_cells([cells[7]])
    corrupt_cache_entry(cache, config_fingerprint(cells[7]), mode="garbage")

    plan = ChaosPlan(
        state_dir=str(tmp_path / "state"),
        kill_once=tuple(chaos_key(c) for c in cells[:3]),
        parent_pid=os.getpid(),
    )
    with ResilientEngine(
        workers=4, cache=cache,
        retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        degrade_after=4,
    ) as engine:
        install_chaos(engine, plan)
        out = engine.run_cells(cells)
    for a, b in zip(reference, out):
        assert results_equal(a, b)
    assert not engine.failure_report.failures
    assert engine.stats.retries >= 3  # each kill retried at least once
    assert cache.corrupt_entries == 1  # quarantined, then recomputed
    assert engine.stats.cells_run == 16  # nothing served from bad state


def test_hung_worker_caught_by_parent_guard(cfg, tmp_path):
    """A worker hung *outside* the kernel is invisible to the in-worker
    watchdog; the parent-side wait guard must tear the pool down and
    retry the cell."""
    cells = [cfg.with_(replication=i) for i in range(3)]
    reference = _reference(cells)
    plan = ChaosPlan(
        state_dir=str(tmp_path / "state"),
        hang_once=(chaos_key(cells[0]),),
        hang_seconds=30.0,
        parent_pid=os.getpid(),
    )
    with ResilientEngine(
        workers=2, cache=CellCache(enabled=False),
        retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        cell_timeout=0.3, deadline_grace=1.0,  # guard fires after ~2.3 s
    ) as engine:
        install_chaos(engine, plan)
        out = engine.run_cells(cells)
    for a, b in zip(reference, out):
        assert results_equal(a, b)
    assert not engine.failure_report.failures
    assert engine.stats.cell_timeouts >= 1
    assert engine.stats.pool_resets >= 1


def test_repeated_pool_failure_degrades_to_serial(cfg, tmp_path):
    cells = [cfg.with_(replication=i) for i in range(6)]
    reference = _reference(cells)
    plan = ChaosPlan(
        state_dir=str(tmp_path / "state"),
        kill_once=tuple(chaos_key(c) for c in cells[:3]),
        parent_pid=os.getpid(),
    )
    with ResilientEngine(
        workers=2, cache=CellCache(enabled=False),
        retry=RetryPolicy(max_attempts=4, backoff_base=0.0),
        degrade_after=1,
    ) as engine:
        install_chaos(engine, plan)
        out = engine.run_cells(cells)
    for a, b in zip(reference, out):
        assert results_equal(a, b)
    assert engine.workers == 1  # demoted
    assert engine.failure_report.degraded_to_serial
    assert "degraded to serial" in engine.failure_report.summary()


def test_serial_kill_degrades_to_raise_not_parricide(cfg, tmp_path):
    """On a serial engine the 'worker' is the parent itself: the kill
    fault must degrade to a ChaosKilled failure, never SIGKILL the
    scheduling process."""
    plan = ChaosPlan(
        state_dir=str(tmp_path / "state"),
        kill_once=(chaos_key(cfg),),
        parent_pid=os.getpid(),
    )
    with ResilientEngine(
        workers=1, cache=CellCache(enabled=False),
        retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
    ) as engine:
        install_chaos(engine, plan)
        out = engine.run_cells([cfg])
    assert results_equal(out[0], _reference([cfg])[0])
    assert engine.stats.retries == 1


def test_chaos_killed_is_transient():
    assert "ChaosKilled" in RetryPolicy().retry_on
    assert issubclass(ChaosKilled, RuntimeError)


def test_corrupt_cache_entry_modes(cfg, tmp_path):
    cache = CellCache(tmp_path)
    results = _reference([cfg])[0]
    for i, mode in enumerate(("garbage", "truncate")):
        key = config_fingerprint(cfg.with_(seed=100 + i))
        cache.put(key, results)
        corrupt_cache_entry(cache, key, mode=mode)
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()  # quarantined
    assert cache.corrupt_entries == 2
    with pytest.raises(ValueError):
        corrupt_cache_entry(cache, "whatever", mode="bitflip")
