"""End-to-end CLI tests for the planner flags on both CLIs.

``--plan``/``--ci-target``/``--budget`` ride the real argument parsers
and engine plumbing: the experiments CLI routes classic table ids to
their ``planned_*`` variants, forwards the planner config, and keeps
working with ``--resume`` journal serving; the ROCC CLI turns one
configuration into an adaptively-replicated run with an analytic
comparison line.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.rocc.__main__ import main as rocc_main


class TestExperimentsCliPlanned:
    def test_plan_routes_table_id_to_planned_variant(self, capsys):
        rc = experiments_main(["figure30", "--plan", "--no-cache"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "planned_validation completed" in captured.out
        assert "surrogate" in captured.out.lower()
        assert "cells pruned" in captured.out
        # The engine summary shows the planner's savings.
        assert "pruned" in captured.err

    def test_planned_id_accepts_budget_and_ci_target(self, capsys):
        rc = experiments_main([
            "planned_validation", "--no-cache",
            "--ci-target", "0.5", "--budget", "6",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "planned_validation completed" in out

    def test_ci_target_validated(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main(["figure30", "--plan", "--ci-target", "0"])

    def test_budget_validated(self, capsys):
        with pytest.raises(SystemExit):
            experiments_main(["figure30", "--plan", "--budget", "0"])

    def test_plan_with_resume_journal_serving(self, tmp_path: Path, capsys):
        """Second planned run replays simulated cells from the journal."""
        journal = tmp_path / "run.jsonl"
        rc = experiments_main([
            "figure30", "--plan", "--no-cache", "--resume", str(journal),
        ])
        assert rc == 0
        first = capsys.readouterr()
        assert journal.is_file(), "resume journal was not written"
        assert "resumed" not in first.err

        rc = experiments_main([
            "figure30", "--plan", "--no-cache", "--resume", str(journal),
        ])
        assert rc == 0
        second = capsys.readouterr()
        assert "resumed" in second.err, (
            "second planned run did not serve cells from the journal"
        )
        # Served-from-journal results must render the same table values.
        table = lambda text: [  # noqa: E731
            line for line in text.splitlines() if line.startswith("|")
        ]
        assert table(first.out) == table(second.out)


class TestRoccCliPlanned:
    _BASE = [
        "--nodes", "2", "--duration-s", "0.5", "--period-ms", "20",
        "--seed", "3",
    ]

    def test_plan_prints_adaptive_summary(self, capsys):
        rc = rocc_main([*self._BASE, "--plan"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replications  :" in out
        assert "analytic" in out
        assert "pd_cpu_time_per_node" in out

    def test_budget_caps_replications(self, capsys):
        rc = rocc_main([*self._BASE, "--plan", "--budget", "2",
                        "--ci-target", "0.0001"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replications  : 2" in out

    def test_tight_ci_target_grows_replications(self, capsys):
        rc = rocc_main([*self._BASE, "--plan", "--ci-target", "0.0001",
                        "--budget", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replications  : 4" in out

    def test_plan_with_resume_journal(self, tmp_path: Path, capsys):
        journal = tmp_path / "rocc.jsonl"
        assert rocc_main(
            [*self._BASE, "--plan", "--resume", str(journal)]
        ) == 0
        first = capsys.readouterr().out
        assert journal.is_file()
        assert rocc_main(
            [*self._BASE, "--plan", "--resume", str(journal)]
        ) == 0
        second = capsys.readouterr().out
        # Replayed cells produce the identical printed means.
        assert first == second

    def test_ci_target_validated(self):
        with pytest.raises(SystemExit):
            rocc_main([*self._BASE, "--plan", "--ci-target", "-1"])

    def test_budget_validated(self):
        with pytest.raises(SystemExit):
            rocc_main([*self._BASE, "--plan", "--budget", "0"])
