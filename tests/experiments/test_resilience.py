"""Tests for the resilience layer: retries, deadlines, journal resume.

The contract under test is the same determinism the engine tests lean
on, extended across failures: a sweep that loses workers, breaches
deadlines, or resumes from a journal must converge to results
bit-identical to an undisturbed serial run.
"""

import json
import pickle

import pytest

from repro.des import SimulationStalled
from repro.experiments import (
    CellCache,
    CellError,
    ExperimentEngine,
    FailureReport,
    ResilientEngine,
    RetryPolicy,
    RunJournal,
    config_fingerprint,
    failure_report_table,
    results_equal,
)
from repro.experiments.chaos import ChaosPlan, chaos_key, install_chaos
from repro.experiments.resilience import DEFAULT_TRANSIENT
from repro.faults.recovery import RecoveryPolicy
from repro.rocc import SimulationConfig


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(
        nodes=1,
        duration=300_000.0,
        sampling_period=20_000.0,
        include_pvmd=False,
        include_other=False,
        seed=5,
    )


def _cell_error(cfg, exc):
    return CellError.from_exception(cfg, exc)


def _reference(cells):
    with ExperimentEngine(workers=1, cache=CellCache(enabled=False)) as eng:
        return eng.run_cells(cells)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_jitter=1.0)
    assert RetryPolicy.none().max_attempts == 1


def test_retry_policy_classifies_by_exception_class(cfg):
    policy = RetryPolicy(max_attempts=3)
    stalled = _cell_error(cfg, SimulationStalled("stalled at t=1"))
    assert policy.error_class(stalled) == "SimulationStalled"
    assert policy.is_transient(stalled)
    assert policy.should_retry(stalled, attempt=1)
    assert policy.should_retry(stalled, attempt=2)
    assert not policy.should_retry(stalled, attempt=3)  # budget exhausted
    # Deterministic model errors are never retried.
    bad = _cell_error(cfg, ValueError("nodes must be positive"))
    assert not policy.is_transient(bad)
    assert not policy.should_retry(bad, attempt=1)
    for name in DEFAULT_TRANSIENT:
        assert name in policy.retry_on


def test_retry_policy_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                         backoff_jitter=0.5)
    for attempt in (1, 2, 3):
        nominal = 0.1 * 2.0 ** (attempt - 1)
        d = policy.delay(attempt, key="cell-a")
        assert d == policy.delay(attempt, key="cell-a")  # deterministic
        assert 0.5 * nominal <= d <= 1.5 * nominal
    # Jitter decorrelates cells without randomness.
    assert policy.delay(1, key="cell-a") != policy.delay(1, key="cell-b")
    no_jitter = RetryPolicy(backoff_base=0.1, backoff_jitter=0.0)
    assert no_jitter.delay(3, key="anything") == pytest.approx(0.4)


def test_retry_policy_from_recovery_policy():
    host = RetryPolicy.from_recovery_policy(
        RecoveryPolicy(backoff_base=500.0, backoff_factor=3.0,
                       backoff_jitter=0.25),
        max_attempts=5,
    )
    assert host.max_attempts == 5
    assert host.backoff_base == pytest.approx(0.5)  # 500 µs -> 500 ms
    assert host.backoff_factor == 3.0
    assert host.backoff_jitter == 0.25


# ---------------------------------------------------------------------------
# RunJournal
# ---------------------------------------------------------------------------


def test_journal_roundtrip(cfg, tmp_path):
    path = tmp_path / "run.jsonl"
    results = _reference([cfg])[0]
    key = config_fingerprint(cfg)
    with RunJournal(path) as journal:
        journal.record_attempt(key, 1)
        journal.record_success(key, results, attempt=1, wall=0.25)
    reloaded = RunJournal(path)
    assert reloaded.completed_keys() == {key}
    assert results_equal(reloaded.result_for(key), results)
    assert reloaded.result_for("missing") is None
    reloaded.close()


def test_journal_tolerates_torn_tail_and_bad_checksum(cfg, tmp_path):
    path = tmp_path / "run.jsonl"
    results = _reference([cfg])[0]
    key = config_fingerprint(cfg)
    with RunJournal(path) as journal:
        journal.record_success(key, results)
        journal.record_failure("other-key", 3, "SimulationStalled: boom")
    # Corrupt the success checksum and append a torn (partial) line.
    lines = path.read_text().splitlines()
    patched = []
    for line in lines:
        rec = json.loads(line)
        if rec.get("event") == "success":
            rec["sha256"] = "0" * 64
        patched.append(json.dumps(rec))
    patched.append('{"event": "succ')  # crash mid-append
    path.write_text("\n".join(patched) + "\n")

    reloaded = RunJournal(path)
    # The damaged success is not served (worst case: recompute).
    assert reloaded.result_for(key) is None
    assert reloaded.skipped_records == 2
    assert reloaded.failed == {"other-key": "SimulationStalled: boom"}
    reloaded.close()


# ---------------------------------------------------------------------------
# Cache integrity (checksums, quarantine, crash-safe writes)
# ---------------------------------------------------------------------------


def test_cache_put_writes_checksum_sidecar(cfg, tmp_path):
    import hashlib

    cache = CellCache(tmp_path)
    results = _reference([cfg])[0]
    key = config_fingerprint(cfg)
    cache.put(key, results)
    blob = cache.path_for(key).read_bytes()
    sidecar = cache.checksum_path_for(key)
    assert sidecar.read_text().strip() == hashlib.sha256(blob).hexdigest()
    assert results_equal(cache.get(key), results)
    # No stray tmp files from the atomic write protocol.
    assert not list(tmp_path.glob("*.tmp*"))


def test_cache_quarantines_corrupt_entry(cfg, tmp_path):
    cache = CellCache(tmp_path)
    results = _reference([cfg])[0]
    key = config_fingerprint(cfg)
    cache.put(key, results)
    cache.path_for(key).write_bytes(b"scribbled by a crash")
    assert cache.get(key) is None  # checksum catches it before unpickle
    assert cache.corrupt_entries == 1
    assert not cache.path_for(key).exists()
    assert any(cache.quarantine_dir.iterdir())
    # The slot is reusable after quarantine.
    cache.put(key, results)
    assert results_equal(cache.get(key), results)


def test_cache_accepts_legacy_entry_without_sidecar(cfg, tmp_path):
    cache = CellCache(tmp_path)
    results = _reference([cfg])[0]
    key = config_fingerprint(cfg)
    cache.path_for(key).parent.mkdir(parents=True, exist_ok=True)
    cache.path_for(key).write_bytes(
        pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL)
    )
    assert not cache.checksum_path_for(key).exists()
    assert results_equal(cache.get(key), results)


# ---------------------------------------------------------------------------
# ResilientEngine: retries, deadlines, partial results
# ---------------------------------------------------------------------------


def test_serial_transient_failure_is_retried(cfg, tmp_path):
    reference = _reference([cfg])
    plan = ChaosPlan(state_dir=str(tmp_path / "state"),
                     raise_once=(chaos_key(cfg),))
    with ResilientEngine(
        workers=1, cache=CellCache(enabled=False),
        retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
    ) as engine:
        install_chaos(engine, plan)
        out = engine.run_cells([cfg])
    assert results_equal(out[0], reference[0])
    assert engine.stats.retries == 1
    assert not engine.failure_report
    assert "1 retries" in engine.stats.summary()


def test_deadline_breach_nonstrict_returns_partial_results(cfg):
    slow = cfg.with_(duration=1e10)  # far more work than 0.2 s allows
    with ResilientEngine(
        workers=1, cache=CellCache(enabled=False),
        retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        cell_timeout=0.2, strict=False,
    ) as engine:
        quick, lost = engine.run_cells([cfg, slow])
    assert results_equal(quick, _reference([cfg])[0])
    assert isinstance(lost, CellError)
    assert lost.error.startswith("SimulationStalled")
    report = engine.failure_report
    assert report  # truthy: a cell was lost
    assert report.failures[0].attempts == 2
    assert report.cell_timeouts == 2  # both attempts breached
    assert engine.stats.cell_timeouts == 2
    table = failure_report_table(report)
    assert table.rows and table.rows[0][1] == 2
    assert any("resilience:" in note for note in table.notes)


def test_deadline_breach_strict_raises(cfg):
    with ResilientEngine(
        workers=1, cache=CellCache(enabled=False),
        retry=RetryPolicy.none(), cell_timeout=0.2,
    ) as engine:
        with pytest.raises(SimulationStalled):
            engine.run_cells([cfg.with_(duration=1e10)])


def test_deadline_does_not_change_results(cfg):
    reference = _reference([cfg])
    with ResilientEngine(
        workers=1, cache=CellCache(enabled=False), cell_timeout=3600.0,
    ) as engine:
        out = engine.run_cells([cfg])
    assert results_equal(out[0], reference[0])
    assert engine.stats.cell_timeouts == 0
    assert engine.stats.retries == 0


def test_engine_validates_parameters():
    with pytest.raises(ValueError):
        ResilientEngine(cell_timeout=0.0)
    with pytest.raises(ValueError):
        ResilientEngine(degrade_after=0)
    with pytest.raises(ValueError):
        ResilientEngine(deadline_grace=0.5)


def test_failure_report_summary_and_format(cfg):
    report = FailureReport()
    assert not report
    report.retries = 3
    report.add(cfg, "k" * 16, 2,
               _cell_error(cfg, SimulationStalled("stalled")))
    assert report
    assert "1 cell(s) failed" in report.summary()
    assert "3 retries" in report.summary()
    assert "after 2 attempt(s)" in report.format()


# ---------------------------------------------------------------------------
# Journal resume: zero re-simulation, bit-identical metrics
# ---------------------------------------------------------------------------


def test_resume_skips_completed_cells_and_matches(cfg, tmp_path):
    cells = [cfg.with_(replication=i) for i in range(4)]
    reference = _reference(cells)
    journal = tmp_path / "sweep.jsonl"

    with ResilientEngine(
        workers=1, cache=CellCache(enabled=False), journal=journal,
    ) as first:
        first.run_cells(cells[:2])  # interrupted after two cells
    assert first.stats.cells_run == 2

    with ResilientEngine(
        workers=1, cache=CellCache(enabled=False), journal=journal,
    ) as second:
        resumed = second.run_cells(cells)
    assert second.stats.cells_resumed == 2
    assert second.stats.cells_run == 2  # only the remainder simulated
    for a, b in zip(reference, resumed):
        assert results_equal(a, b)
    assert "2 resumed" in second.stats.summary()


def test_resume_works_without_cache_and_across_config_changes(cfg, tmp_path):
    journal = tmp_path / "sweep.jsonl"
    with ResilientEngine(
        workers=1, cache=CellCache(enabled=False), journal=journal,
    ) as first:
        first.run_cells([cfg])
    # A changed config produces a different fingerprint: no false resume.
    other = cfg.with_(seed=6)
    with ResilientEngine(
        workers=1, cache=CellCache(enabled=False), journal=journal,
    ) as second:
        second.run_cells([other])
    assert second.stats.cells_resumed == 0
    assert second.stats.cells_run == 1


def test_journal_records_failures(cfg, tmp_path):
    journal_path = tmp_path / "fail.jsonl"
    slow = cfg.with_(duration=1e10)
    with ResilientEngine(
        workers=1, cache=CellCache(enabled=False),
        retry=RetryPolicy.none(), cell_timeout=0.2,
        journal=journal_path, strict=False,
    ) as engine:
        engine.run_cells([slow])
    events = [json.loads(line)["event"]
              for line in journal_path.read_text().splitlines()]
    assert events[0] == "journal"
    assert "attempt" in events and "failure" in events
    reloaded = RunJournal(journal_path)
    assert reloaded.failed  # the breach is on record, not resumable
    reloaded.close()
