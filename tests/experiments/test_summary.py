"""Tests for the reproduction scorecard experiment."""

from repro.experiments import run
from repro.paper import CLAIMS


def test_summary_lists_every_claim():
    fig = run("summary")
    table = fig.find("claims")
    assert len(table.rows) == len(CLAIMS)
    ids = set(table.column("claim"))
    assert {c.id for c in CLAIMS} == ids


def test_summary_counts_partition():
    fig = run("summary")
    counts = fig.find("status counts")
    rows = dict(zip(counts.column("status"), counts.column("claims")))
    total = rows.pop("total")
    assert sum(rows.values()) == total == len(CLAIMS)


def test_summary_renders_instantly():
    import time

    t0 = time.time()
    run("summary")
    assert time.time() - t0 < 1.0  # no simulation behind it
