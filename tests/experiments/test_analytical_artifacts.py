"""Structural tests of the analytic-figure artifacts (9, 10, 12–15).

These figures are pure math and cheap, so the tests assert the full
panel structure and the paper's qualitative orderings directly on the
rendered artifacts.
"""

import pytest

from repro.experiments import run


@pytest.fixture(scope="module")
def figs():
    return {fid: run(fid) for fid in
            ("figure9", "figure10", "figure12", "figure13",
             "figure14", "figure15")}


def test_figure9_has_eight_panels(figs):
    fig = figs["figure9"]
    assert len(fig.parts) == 8
    a = [p for p in fig.parts if p.title.startswith("(a)")]
    b = [p for p in fig.parts if p.title.startswith("(b)")]
    assert len(a) == len(b) == 4


def test_figure9_series_cover_policies(figs):
    for panel in figs["figure9"].parts:
        assert set(panel.series) == {"CF", "BF"}
        for ys in panel.series.values():
            assert len(ys) == len(panel.x)


def test_figure10_has_three_periods(figs):
    for panel in figs["figure10"].parts:
        assert set(panel.series) == {"T=1ms", "T=40ms", "T=64ms"}


def test_figure10_app_utilization_rises_with_batch(figs):
    panel = figs["figure10"].find("Appl. CPU utilization")
    for ys in panel.series.values():
        assert all(a <= b + 1e-12 for a, b in zip(ys, ys[1:]))


def test_smp_figures_have_cf_and_bf_sections(figs):
    for fid in ("figure12", "figure13"):
        titles = [p.title for p in figs[fid].parts]
        assert any(t.startswith("(CF)") for t in titles)
        assert any(t.startswith("(BF)") for t in titles)
        for panel in figs[fid].parts:
            assert set(panel.series) == {"1 Pd", "2 Pds", "3 Pds", "4 Pds"}


def test_figure12_overhead_falls_with_period(figs):
    panel = figs["figure12"].find("(CF) IS CPU utilization")
    for ys in panel.series.values():
        assert all(a >= b for a, b in zip(ys, ys[1:]))


def test_mpp_figures_compare_topologies(figs):
    for fid in ("figure14", "figure15"):
        for panel in figs[fid].parts:
            assert set(panel.series) == {"direct", "tree"}


def test_figure15_app_utilization_complements_pd(figs):
    fig = figs["figure15"]
    pd = fig.find("Pd CPU utilization")
    app = fig.find("Appl. CPU utilization")
    for key in ("direct", "tree"):
        for u_pd, u_app in zip(pd.series[key], app.series[key]):
            assert u_pd + u_app == pytest.approx(100.0)


def test_all_formats_render(figs):
    for fig in figs.values():
        text = fig.format()
        assert len(text) > 200
