"""Tests for artifact JSON export."""

import json
import math

import pytest

from repro.experiments.reporting import (
    ArtifactGroup,
    SeriesSet,
    Table,
    artifact_to_dict,
    save_artifact,
)


def sample_group():
    g = ArtifactGroup(title="fig", notes=["gn"])
    t = Table(title="t", headers=["a", "b"], notes=["tn"])
    t.add_row(1, 2.5)
    t.add_row("x", math.nan)
    s = SeriesSet(title="s", x_label="x", y_label="y", x=[1.0, 2.0])
    s.add_series("CF", [3.0, math.inf])
    g.add(t)
    g.add(s)
    return g


def test_table_dict_roundtrip():
    t = Table(title="t", headers=["a"], rows=[[1], [2]])
    d = artifact_to_dict(t)
    assert d["type"] == "table"
    assert d["rows"] == [[1], [2]]


def test_nan_inf_become_null():
    d = artifact_to_dict(sample_group())
    table = d["parts"][0]
    assert table["rows"][1][1] is None
    series = d["parts"][1]
    assert series["series"]["CF"][1] is None
    # Whole structure must be JSON-serializable.
    json.dumps(d)


def test_group_nested_structure():
    d = artifact_to_dict(sample_group())
    assert d["type"] == "group"
    assert [p["type"] for p in d["parts"]] == ["table", "series"]
    assert d["notes"] == ["gn"]


def test_non_artifact_rejected():
    with pytest.raises(TypeError):
        artifact_to_dict("hello")


def test_save_artifact_writes_json_and_txt(tmp_path):
    path = save_artifact(sample_group(), tmp_path / "out" / "fig.json")
    assert path.exists()
    data = json.loads(path.read_text())
    assert data["title"] == "fig"
    txt = path.with_suffix(".txt")
    assert txt.exists()
    assert "fig" in txt.read_text()


def test_cli_out_flag(tmp_path, capsys):
    from repro.experiments.__main__ import main

    rc = main(["figure9", "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "figure9.json").exists()
    assert "saved to" in capsys.readouterr().out


def test_enum_values_serialized():
    from repro.rocc import ForwardingTopology

    t = Table(title="t", headers=["fwd"])
    t.add_row(ForwardingTopology.TREE)
    d = artifact_to_dict(t)
    assert d["rows"][0][0] == "tree"
    json.dumps(d)
