"""End-to-end CLI tests: ``python -m repro.experiments`` / ``repro.rocc``.

The experiments CLI runs as a real subprocess with ``--workers``,
``--no-cache``, and ``--trace-out`` and must produce a valid Chrome
``trace_event`` document: monotone ``ts``, matched B/E pairs, pid/tid
on every event — checked both by :func:`repro.obs.validate_trace_events`
and independently here, so the validator itself is under test too.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import validate_trace_events

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_cli(module: str, args, cwd: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_TRACE", None)
    env.pop("REPRO_PROFILE", None)
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
        timeout=420,
    )


@pytest.fixture(scope="module")
def traced_cli_run(tmp_path_factory: pytest.TempPathFactory):
    """One traced engine experiment through the real CLI (module-scoped:
    the run is the expensive part, the assertions are cheap)."""
    tmp = tmp_path_factory.mktemp("cli")
    trace_path = tmp / "trace.json"
    proc = _run_cli(
        "repro.experiments",
        ["figure17", "--workers", "2", "--no-cache",
         "--trace-out", str(trace_path)],
        cwd=tmp,
    )
    assert proc.returncode == 0, proc.stderr
    assert trace_path.is_file(), "CLI did not write the trace file"
    return proc, json.loads(trace_path.read_text())


def test_cli_reports_trace_and_engine(traced_cli_run) -> None:
    proc, _ = traced_cli_run
    assert "figure17 completed" in proc.stdout
    assert "[engine:" in proc.stderr
    assert "trace summary:" in proc.stderr
    assert "[trace written to" in proc.stderr


def test_cli_trace_validates(traced_cli_run) -> None:
    _, doc = traced_cli_run
    assert validate_trace_events(doc) == []
    assert doc.get("displayTimeUnit") == "ms"
    assert "metrics" in doc.get("otherData", {})


def test_cli_trace_structure_independently(traced_cli_run) -> None:
    """Re-check the trace invariants without trusting the validator."""
    _, doc = traced_cli_run
    events = doc["traceEvents"]
    assert events, "empty trace"
    last_ts = None
    stacks: dict = {}
    for event in events:
        if event["ph"] == "M":
            continue
        assert isinstance(event["ts"], (int, float))
        assert "pid" in event and "tid" in event
        if last_ts is not None:
            assert event["ts"] >= last_ts, "ts not monotone"
        last_ts = event["ts"]
        track = (event["pid"], event["tid"])
        if event["ph"] == "B":
            stacks.setdefault(track, []).append(event["name"])
        elif event["ph"] == "E":
            assert stacks.get(track), f"E without B on {track}"
            assert stacks[track].pop() == event["name"]
    assert all(not s for s in stacks.values()), "unclosed B events"


def test_cli_trace_spans_three_layers_two_workers(traced_cli_run) -> None:
    """The ISSUE's acceptance shape: spans from the engine-cell,
    simulation-run, and resource-occupancy layers, merged from at least
    two worker processes."""
    _, doc = traced_cli_run
    events = doc["traceEvents"]
    cats = {e.get("cat") for e in events if e.get("ph") == "B"}
    assert {"engine.cell", "run", "occupancy"} <= cats
    worker_pids = {
        e["pid"] for e in events if e.get("cat") == "engine.cell"
    }
    assert len(worker_pids) >= 2, (
        f"cells ran in {worker_pids} — expected >= 2 worker processes"
    )


def test_cli_jsonl_export(tmp_path: Path) -> None:
    """The rocc CLI writes JSONL when the path says so."""
    trace_path = tmp_path / "run.jsonl"
    proc = _run_cli(
        "repro.rocc",
        ["--nodes", "2", "--duration-s", "0.2",
         "--trace-out", str(trace_path)],
        cwd=tmp_path,
    )
    assert proc.returncode == 0, proc.stderr
    lines = trace_path.read_text().splitlines()
    assert lines
    records = [json.loads(line) for line in lines]
    kinds = {r["type"] for r in records}
    assert {"span", "counter", "metric"} <= kinds


def test_cli_trace_env_knob(tmp_path: Path) -> None:
    """REPRO_TRACE enables tracing without the flag."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_TRACE"] = "env-trace.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.rocc",
         "--nodes", "2", "--duration-s", "0.2"],
        capture_output=True, text=True, env=env, cwd=tmp_path, timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    doc = json.loads((tmp_path / "env-trace.json").read_text())
    assert validate_trace_events(doc) == []


def test_cli_workload_passthrough(tmp_path: Path) -> None:
    """`--workload` narrows the open_workload sweep to one class."""
    proc = _run_cli(
        "repro.experiments",
        ["open_workload", "--no-cache",
         "--workload", "stationary:rate=150,alpha=0.5"],
        cwd=tmp_path,
    )
    assert proc.returncode == 0, proc.stderr
    assert "open_workload completed" in proc.stdout
    assert "stationary" in proc.stdout
    # The sweep was restricted: none of the other classes ran.
    assert "flashcrowd" not in proc.stdout


def test_cli_workload_validation(tmp_path: Path) -> None:
    proc = _run_cli(
        "repro.experiments",
        ["open_workload", "--workload", "bogus"],
        cwd=tmp_path,
    )
    assert proc.returncode == 2
    assert "unknown workload" in proc.stderr
    proc = _run_cli(
        "repro.experiments",
        ["open_workload", "--workload", "open:window_s=999"],
        cwd=tmp_path,
    )
    assert proc.returncode == 2
    assert "window_s" in proc.stderr


def test_cli_lp_workers_validation(tmp_path: Path) -> None:
    proc = _run_cli(
        "repro.experiments",
        ["figure9", "--lp-workers", "0"],
        cwd=tmp_path,
    )
    assert proc.returncode == 2
    assert "--lp-workers must be >= 1" in proc.stderr


def test_rocc_cli_workload_e2e(tmp_path: Path) -> None:
    proc = _run_cli(
        "repro.rocc",
        ["--nodes", "2", "--duration-s", "0.4", "--seed", "11",
         "--workload", "open:avg_users=40,rpm=120,window_s=0.1"],
        cwd=tmp_path,
    )
    assert proc.returncode == 0, proc.stderr
    assert "open workload :" in proc.stdout
    assert "wl=open" in proc.stdout
