"""Tests for replication / sweep utilities."""

import pytest

from repro.experiments import MeanResults, metric_series, replicate, sweep
from repro.rocc import SimulationConfig


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(nodes=1, duration=400_000.0, sampling_period=20_000.0,
                            seed=5)


def test_replicate_runs_independent_reps(cfg):
    res = replicate(cfg, repetitions=3)
    assert len(res.results) == 3
    values = res.raw("pd_cpu_time_per_node")
    assert len(set(values)) == 3  # distinct random streams


def test_replicate_validation(cfg):
    with pytest.raises(ValueError):
        replicate(cfg, repetitions=0)


def test_mean_results_averages(cfg):
    res = replicate(cfg, repetitions=3)
    import statistics

    assert res.pd_cpu_time_per_node == pytest.approx(
        statistics.mean(res.raw("pd_cpu_time_per_node"))
    )


def test_mean_results_passthrough_non_numeric(cfg):
    res = replicate(cfg, repetitions=2)
    assert res.nodes == 1
    assert "n=1" in res.config_summary


def test_mean_results_derived_properties(cfg):
    res = replicate(cfg, repetitions=2)
    assert res.pd_cpu_seconds_per_node == pytest.approx(
        res.pd_cpu_time_per_node / 1e6
    )
    assert res.monitoring_latency_forwarding_ms == pytest.approx(
        res.monitoring_latency_forwarding / 1e3
    )


def test_mean_results_skips_nan(cfg):
    # batch too large to complete -> latency NaN in each rep.
    res = replicate(cfg.with_(batch_size=1000), repetitions=2)
    assert res.monitoring_latency_forwarding != res.monitoring_latency_forwarding


def test_sweep_varies_parameter(cfg):
    runs = sweep(cfg, "sampling_period", [10_000.0, 40_000.0], repetitions=1)
    assert len(runs) == 2
    thr = metric_series(runs, "throughput_per_daemon")
    assert thr[0] > thr[1]  # faster sampling, more samples


def test_sweep_rejects_unknown_parameter(cfg):
    with pytest.raises(ValueError):
        sweep(cfg, "no_such_knob", [1, 2])


def test_sweep_aggregated_mode(cfg):
    from repro.rocc import Architecture

    mpp = cfg.with_(architecture=Architecture.MPP, nodes=16)
    runs = sweep(mpp, "batch_size", [1, 8], repetitions=1, aggregated=True)
    assert runs[0].nodes == 16
    assert runs[0].pd_cpu_time_per_node > runs[1].pd_cpu_time_per_node


def test_mean_results_unknown_attribute_raises_attribute_error(cfg):
    res = replicate(cfg, repetitions=1)
    with pytest.raises(AttributeError):
        res.no_such_metric
    assert not hasattr(res, "no_such_metric")  # must not raise IndexError


def test_mean_results_dunder_probes_do_not_recurse(cfg):
    import copy
    import pickle

    res = replicate(cfg, repetitions=1)
    # copy/pickle probe dunders like __deepcopy__/__getstate__ through
    # getattr; a broken __getattr__ would recurse or raise IndexError.
    clone = copy.deepcopy(res)
    assert clone.nodes == res.nodes
    restored = pickle.loads(pickle.dumps(res))
    assert restored.nodes == res.nodes


def test_mean_results_averages_fault_metrics(cfg):
    res = replicate(cfg, repetitions=2)
    # New numeric fields are averaged (zero / NaN without faults).
    assert res.daemon_downtime == 0.0
    assert res.recovery_latency != res.recovery_latency  # NaN


def test_common_random_numbers_across_levels(cfg):
    """Two sweeps differing only in policy share replication streams, so
    the app workload realization is identical (CRN variance reduction)."""
    a = replicate(cfg.with_(batch_size=1), repetitions=1)
    b = replicate(cfg.with_(batch_size=8), repetitions=1)
    assert a.results[0].samples_generated == b.results[0].samples_generated


def test_mean_ci_matches_confidence_helper(cfg):
    from repro.expdesign import mean_confidence_interval

    res = replicate(cfg, repetitions=3)
    ci = res.mean_ci("pd_cpu_time_per_node")
    expected = mean_confidence_interval(res.raw("pd_cpu_time_per_node"))
    assert ci.mean == pytest.approx(expected.mean)
    assert ci.low == pytest.approx(expected.low)
    assert ci.high == pytest.approx(expected.high)
    assert ci.n == 3


def test_mean_ci_excludes_nan_reps(cfg):
    # One rep per value of a metric that is NaN in every rep would fail;
    # mix finite and NaN by combining different batch sizes manually.
    finite = replicate(cfg, repetitions=3)
    nan_rep = replicate(cfg.with_(batch_size=1000), repetitions=1)
    combined = MeanResults(finite.results + nan_rep.results)
    ci = combined.mean_ci("monitoring_latency_forwarding")
    assert ci.n == 3  # the NaN rep dropped out


def test_mean_ci_degenerate_without_two_finite_reps(cfg):
    res = replicate(cfg.with_(batch_size=1000), repetitions=2)
    ci = res.mean_ci("monitoring_latency_forwarding")
    assert ci.degenerate and ci.n == 0
    assert ci.relative_half_width == float("inf")


def test_mean_results_fully_failed_cell_degrades_to_nan():
    """strict=False can hand a sweep a cell with zero successful reps:
    numeric means must degrade to NaN, not crash."""
    from repro.experiments.engine import CellError

    err = CellError(config_summary="now n=2 b=1 rep=0", error="boom",
                    traceback="...")
    res = MeanResults([], [err])
    assert res.pd_cpu_time_per_node != res.pd_cpu_time_per_node  # NaN
    assert res.open_offered_rate != res.open_offered_rate
    assert res.errors == [err]


def test_mean_results_fully_failed_cell_clear_attribute_error():
    res = MeanResults([])
    with pytest.raises(AttributeError, match="all replications failed"):
        res.config_summary
    # Protocol probes still raise plain AttributeError, not IndexError.
    with pytest.raises(AttributeError):
        res.__deepcopy__


def test_mean_results_averages_open_workload_metrics(cfg):
    from repro.workload.generators import TrafficSpec

    spec = TrafficSpec.parse("open:avg_users=30,rpm=120,window_s=0.1")
    res = replicate(cfg.with_(traffic=spec), repetitions=2)
    assert res.open_offered_rate > 0.0
    assert res.open_active_users == res.open_active_users  # not NaN
