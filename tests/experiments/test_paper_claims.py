"""Integration tests of the paper's headline claims, via the experiment
runners themselves.  These are the 'shape' assertions EXPERIMENTS.md
records: who wins, by roughly what factor, where the knees fall.

The heavier simulation-backed artifacts are exercised in quick mode.
"""

from statistics import mean

import pytest

from repro.experiments import run


@pytest.fixture(scope="module")
def fig30():
    return run("figure30", quick=True)


@pytest.fixture(scope="module")
def fig31():
    return run("figure31", quick=True)


@pytest.fixture(scope="module")
def fig19():
    return run("figure19", quick=True)


class TestHeadlineOverheadReduction:
    def test_pd_reduction_over_60_percent(self, fig30):
        summary = fig30.find("overhead reduction")
        for value in summary.column("pd_reduction_pct"):
            assert value > 60.0

    def test_main_reduction_about_80_percent(self, fig30):
        summary = fig30.find("overhead reduction")
        for value in summary.column("main_reduction_pct"):
            assert 70.0 < value < 90.0

    def test_policy_dominates_variation(self, fig30):
        """Table 7: policy (A) explains the largest single share of the
        main-process CPU-time variation."""
        table = fig30.find("main CPU time")
        rows = dict(zip(table.column("effect"), table.column("percent")))
        assert rows["A"] == max(
            v for k, v in rows.items() if k not in ("error",)
        )


class TestApplicationIndependence:
    def test_reduction_holds_for_both_benchmarks(self, fig31):
        bars = fig31.find("normalized CPU occupancy")
        rows = {
            (p, b): v
            for p, b, v in zip(
                bars.column("policy"),
                bars.column("benchmark"),
                bars.column("pd_pct_of_node"),
            )
        }
        for bench in ("pvmbt", "pvmis"):
            reduction = 1 - rows[("BF", bench)] / rows[("CF", bench)]
            assert reduction > 0.5

    def test_application_factor_negligible(self, fig31):
        table = fig31.find("Table 8: variation explained for Pd")
        rows = dict(zip(table.column("effect"), table.column("percent")))
        assert rows["A"] > 90.0  # policy
        assert rows["B"] < 5.0  # application program


class TestBatchSizeKnee:
    def test_sharp_drop_then_plateau(self, fig19):
        panel = fig19.find("Pd CPU utilization/node")
        for name, ys in panel.series.items():
            # CF -> batch 2 cuts overhead substantially...
            assert ys[1] < 0.8 * ys[0]
            # ...but batch 64 -> 128 changes little (the plateau).
            assert abs(ys[-1] - ys[-2]) < 0.15 * ys[0]

    def test_app_utilization_recovers_with_batching(self, fig19):
        panel = fig19.find("Appl. CPU utilization/node")
        for ys in panel.series.values():
            assert ys[-1] >= ys[0] - 1e-6


class TestFactorAttribution:
    def test_now_sampling_period_dominates_pd_cpu(self):
        fig = run("figure16", quick=True)
        table = fig.find("Pd CPU time")
        rows = dict(zip(table.column("effect"), table.column("percent")))
        assert max(rows, key=rows.get) == "B"
        assert rows["B"] > 40.0

    def test_mpp_period_then_policy(self):
        fig = run("figure25", quick=True)
        table = fig.find("Pd CPU time")
        rows = dict(zip(table.column("effect"), table.column("percent")))
        ordered = sorted(rows.items(), key=lambda kv: -kv[1])
        assert ordered[0][0] == "B"
        assert "C" in (ordered[1][0], ordered[2][0])


class TestAnalyticalFigures:
    def test_figure9_bf_below_cf_everywhere(self):
        fig = run("figure9")
        for panel in fig.parts:
            if "Pd CPU" in panel.title:
                for cf, bf in zip(panel.series["CF"], panel.series["BF"]):
                    assert bf < cf

    def test_figure10_monotone_decreasing_overhead(self):
        fig = run("figure10")
        panel = fig.find("Pd CPU utilization")
        for ys in panel.series.values():
            assert all(a >= b for a, b in zip(ys, ys[1:]))

    def test_figure15_tree_overhead_above_direct(self):
        fig = run("figure15")
        panel = fig.find("Pd CPU utilization")
        direct, tree = panel.series["direct"], panel.series["tree"]
        assert all(t >= d for d, t in zip(direct, tree))
        assert tree[-1] > 1.5 * direct[-1]


class TestValidationTable3:
    def test_simulation_tracks_measurement(self):
        table = run("table3", quick=True)
        app = table.column("app_cpu_s")
        pd = table.column("pd_cpu_s")
        assert app[1] == pytest.approx(app[0], rel=0.15)
        assert pd[1] == pytest.approx(pd[0], rel=0.5)
        # Overhead is small relative to the application, as measured.
        assert mean(pd) < 0.05 * mean(app)


class TestWorkloadCharacterization:
    def test_table1_moments(self):
        table = run("table1", quick=True)
        rows = dict(zip(table.column("process"), table.column("cpu_mean")))
        assert rows["application"] == pytest.approx(2213.0, rel=0.15)
        assert rows["paradyn_daemon"] == pytest.approx(267.0, rel=0.25)

    def test_table2_families(self):
        table = run("table2", quick=True)
        fam = {
            (p, r): f
            for p, r, f in zip(
                table.column("process"),
                table.column("resource"),
                table.column("family"),
            )
        }
        assert fam[("application", "cpu")] == "lognormal"
        assert fam[("application", "network")] == "exponential"

    def test_figure8_qq_diagnostics(self):
        fig = run("figure8", quick=True)
        qq = fig.find("cpu requests: Q-Q diagnostics")
        rows = dict(zip(qq.column("statistic"), qq.column("value")))
        # "approximately follows the ideal linear curve, exhibiting
        # differences at both tails" — heavy-tailed lognormal data keeps
        # the correlation high but not perfect at quick-mode sample sizes.
        assert rows["linearity (corr)"] > 0.85
