"""Tests for the extension experiments (adaptive, perturbation)."""

import pytest

from repro.experiments import run


@pytest.fixture(scope="module")
def adaptive():
    return run("extra_adaptive", quick=True)


@pytest.fixture(scope="module")
def perturbation():
    return run("extra_perturbation", quick=True)


class TestExtraAdaptive:
    def test_table_shape(self, adaptive):
        table = adaptive.find("static vs regulated")
        assert len(table.rows) == 3
        assert table.column("strategy")[0].startswith("static")

    def test_regulation_hits_budget(self, adaptive):
        table = adaptive.find("static vs regulated")
        settled = table.column("settled_overhead_pct")
        assert settled[0] > 15.0  # static blows the budget
        assert settled[1] < 1.5
        assert settled[2] < 1.5

    def test_batch_strategy_keeps_more_samples(self, adaptive):
        table = adaptive.find("static vs regulated")
        delivered = table.column("samples_delivered")
        assert delivered[2] > 1.5 * delivered[1]


class TestExtraPerturbation:
    def test_rows_cover_both_policies(self, perturbation):
        policies = set(perturbation.column("policy"))
        assert policies == {"CF", "BF"}

    def test_slowdown_decreases_with_period(self, perturbation):
        cf = [
            (p, s)
            for p, pol, s in zip(
                perturbation.column("period_ms"),
                perturbation.column("policy"),
                perturbation.column("slowdown_pct"),
            )
            if pol == "CF"
        ]
        slowdowns = [s for _, s in sorted(cf)]
        assert slowdowns == sorted(slowdowns, reverse=True)

    def test_bf_always_gentler(self, perturbation):
        rows = {}
        for p, pol, s in zip(
            perturbation.column("period_ms"),
            perturbation.column("policy"),
            perturbation.column("slowdown_pct"),
        ):
            rows.setdefault(p, {})[pol] = s
        for p, vals in rows.items():
            assert vals["BF"] < vals["CF"]

    def test_covers_paper_motivating_range(self, perturbation):
        """§1: degradation 'from 10% to more than 50%'."""
        slowdowns = perturbation.column("slowdown_pct")
        assert max(slowdowns) > 50.0
        assert min(slowdowns) < 10.0

    def test_direct_plus_indirect_equals_slowdown(self, perturbation):
        for s, d, i in zip(
            perturbation.column("slowdown_pct"),
            perturbation.column("direct_pct"),
            perturbation.column("indirect_pct"),
        ):
            assert s == pytest.approx(d + i, abs=1e-6)
