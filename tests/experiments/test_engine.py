"""Tests for the parallel experiment engine and its cell cache.

The load-bearing property is *determinism*: because every cell draws
from dedicated named substreams, the same sweep must yield identical
``SimulationResults`` field-by-field whether it runs serially, across
worker processes, or from a warm content-addressed cache.
"""

import os
import pickle

import pytest

from repro.des import SimulationStalled
from repro.experiments import (
    CellCache,
    CellError,
    EngineStats,
    ExperimentEngine,
    MeanResults,
    config_fingerprint,
    current_engine,
    replicate,
    results_equal,
    run_design,
    sweep,
    use_engine,
)
from repro.experiments.engine import code_version
from repro.expdesign.factorial import Factor, FactorialDesign
from repro.rocc import SimulationConfig
from repro.rocc.config import DaemonCostModel
from repro.variates.distributions import Exponential


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(
        nodes=1,
        duration=300_000.0,
        sampling_period=20_000.0,
        include_pvmd=False,
        include_other=False,
        seed=5,
    )


def _no_cache_engine(workers=1):
    return ExperimentEngine(workers=workers, cache=CellCache(enabled=False))


def _assert_cells_identical(cells_a, cells_b):
    assert len(cells_a) == len(cells_b)
    for a, b in zip(cells_a, cells_b):
        assert len(a.results) == len(b.results)
        for ra, rb in zip(a.results, b.results):
            assert results_equal(ra, rb)


# ---------------------------------------------------------------------------
# Determinism: serial == parallel == cached
# ---------------------------------------------------------------------------


def test_sweep_deterministic_serial_parallel_cached(cfg, tmp_path):
    values = [10_000.0, 20_000.0, 40_000.0]
    serial = sweep(cfg, "sampling_period", values, repetitions=2,
                   engine=_no_cache_engine())
    with _no_cache_engine(workers=2) as parallel_engine:
        parallel = sweep(cfg, "sampling_period", values, repetitions=2,
                         engine=parallel_engine)
    cached_engine = ExperimentEngine(workers=1, cache=CellCache(tmp_path))
    cold = sweep(cfg, "sampling_period", values, repetitions=2,
                 engine=cached_engine)
    warm = sweep(cfg, "sampling_period", values, repetitions=2,
                 engine=cached_engine)

    _assert_cells_identical(serial, parallel)
    _assert_cells_identical(serial, cold)
    _assert_cells_identical(serial, warm)
    # The second cached sweep executed nothing: every cell was a hit.
    assert cached_engine.stats.cache_hits == len(values) * 2
    assert cached_engine.stats.cells_run == len(values) * 2


def test_parallel_preserves_common_random_numbers(cfg):
    """CRN across factor levels survives the process boundary: cells
    differing only in policy see the same workload realization."""
    with _no_cache_engine(workers=2) as engine:
        a = replicate(cfg.with_(batch_size=1), repetitions=1, engine=engine)
        b = replicate(cfg.with_(batch_size=8), repetitions=1, engine=engine)
    assert a.results[0].samples_generated == b.results[0].samples_generated


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


def test_fingerprint_is_stable_and_field_sensitive(cfg):
    assert config_fingerprint(cfg) == config_fingerprint(cfg)
    assert config_fingerprint(cfg.with_()) == config_fingerprint(cfg)
    # Every varying ingredient moves the address.
    assert config_fingerprint(cfg.with_(replication=1)) != config_fingerprint(cfg)
    assert config_fingerprint(cfg.with_(seed=6)) != config_fingerprint(cfg)
    assert config_fingerprint(cfg.with_(batch_size=2)) != config_fingerprint(cfg)
    assert config_fingerprint(cfg, aggregated=True) != config_fingerprint(cfg)


def test_fingerprint_sees_nested_models(cfg):
    tweaked = cfg.with_(
        daemon_costs=DaemonCostModel(collection_cpu=Exponential(90.0))
    )
    assert config_fingerprint(tweaked) != config_fingerprint(cfg)
    same = cfg.with_(daemon_costs=DaemonCostModel())
    assert config_fingerprint(same) == config_fingerprint(cfg)


def test_fingerprint_salted_by_code_version(cfg, monkeypatch):
    import repro.experiments.engine as engine_mod

    before = config_fingerprint(cfg)
    monkeypatch.setattr(engine_mod, "_code_version", "different-salt")
    assert config_fingerprint(cfg) != before
    assert code_version() == "different-salt"


# ---------------------------------------------------------------------------
# Cell cache
# ---------------------------------------------------------------------------


def test_cache_roundtrip_and_corruption_eviction(cfg, tmp_path):
    cache = CellCache(tmp_path)
    engine = ExperimentEngine(workers=1, cache=cache)
    res = replicate(cfg, repetitions=1, engine=engine).results[0]
    key = config_fingerprint(cfg)
    restored = cache.get(key)
    assert restored is not None and results_equal(res, restored)
    # The on-disk payload unpickles to the same metrics.
    assert results_equal(
        pickle.loads(cache.path_for(key).read_bytes()), restored
    )
    # A corrupt entry is evicted and treated as a miss.
    cache.path_for(key).write_bytes(b"not a pickle")
    assert cache.get(key) is None
    assert not cache.path_for(key).exists()


def test_cache_clear_and_disable(cfg, tmp_path, monkeypatch):
    cache = CellCache(tmp_path)
    engine = ExperimentEngine(workers=1, cache=cache)
    replicate(cfg, repetitions=2, engine=engine)
    assert cache.clear() == 2
    assert cache.clear() == 0
    monkeypatch.setenv("REPRO_CELL_CACHE", "0")
    assert CellCache(tmp_path).enabled is False
    monkeypatch.setenv("REPRO_CELL_CACHE", "1")
    assert CellCache(tmp_path).enabled is True
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert CellCache().root == tmp_path / "elsewhere"


def test_failed_cells_are_never_cached(cfg, tmp_path):
    cache = CellCache(tmp_path)
    engine = ExperimentEngine(workers=1, cache=cache)
    bad = cfg.with_(max_events=10)
    replicate(bad, repetitions=1, isolate=True, engine=engine)
    assert cache.get(config_fingerprint(bad)) is None


# ---------------------------------------------------------------------------
# Failure semantics across the process boundary
# ---------------------------------------------------------------------------


def test_parallel_isolate_ships_cell_errors_back(cfg):
    with _no_cache_engine(workers=2) as engine:
        runs = sweep(cfg, "max_events", [10, 10_000_000], repetitions=1,
                     isolate=True, engine=engine)
    assert runs[0].results == [] and len(runs[0].errors) == 1
    assert isinstance(runs[0].errors[0], CellError)
    assert "SimulationStalled" in runs[0].errors[0].error
    assert "SimulationStalled" in runs[0].errors[0].traceback
    assert len(runs[1].results) == 1 and runs[1].errors == []
    assert engine.stats.cell_errors == 1


def test_parallel_nonisolated_reraises_original_exception(cfg):
    with _no_cache_engine(workers=2) as engine:
        with pytest.raises(SimulationStalled):
            replicate(cfg.with_(max_events=10), repetitions=2, engine=engine)


def test_serial_fallback_fails_fast(cfg):
    """workers=1 keeps the historical semantics: the first failing rep
    raises before later reps run."""
    engine = _no_cache_engine(workers=1)
    with pytest.raises(SimulationStalled):
        replicate(cfg.with_(max_events=10), repetitions=3, engine=engine)
    assert engine.stats.cells_run == 1  # reps 2 and 3 never started


# ---------------------------------------------------------------------------
# Engine plumbing: stats, ambient engine, design batching
# ---------------------------------------------------------------------------


def test_engine_stats_accounting(cfg, tmp_path):
    engine = ExperimentEngine(workers=1, cache=CellCache(tmp_path))
    sweep(cfg, "sampling_period", [10_000.0, 40_000.0], repetitions=2,
          engine=engine)
    stats = engine.stats
    assert stats.cells_submitted == 4
    assert stats.cells_run == 4 and stats.cache_hits == 0
    assert stats.wall_time > 0 and stats.cell_cpu_time > 0
    assert 0 < stats.worker_utilization <= 1.5  # 1 worker, minor timer skew
    snap = stats.copy()
    sweep(cfg, "sampling_period", [10_000.0, 40_000.0], repetitions=2,
          engine=engine)
    delta = engine.stats.since(snap)
    assert delta.cells_submitted == 4 and delta.cache_hits == 4
    assert "4 cells" in delta.summary() and "4 cached" in delta.summary()


def test_engine_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ExperimentEngine(workers=0)


def test_use_engine_is_ambient(cfg):
    engine = _no_cache_engine()
    with use_engine(engine):
        assert current_engine() is engine
        replicate(cfg, repetitions=1)
    assert current_engine() is not engine
    assert engine.stats.cells_submitted == 1


def test_workers_default_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert ExperimentEngine().workers == 3


def test_run_design_matches_per_run_replicate(cfg):
    design = FactorialDesign(
        [
            Factor("sampling_period", 10_000.0, 40_000.0, "B"),
            Factor("batch_size", 1, 4, "C"),
        ]
    )

    def make(run):
        return cfg.with_(
            sampling_period=run["sampling_period"],
            batch_size=int(run["batch_size"]),
        )

    cells = run_design(design, make, repetitions=2, engine=_no_cache_engine())
    assert len(cells) == design.n_runs
    reference = [
        replicate(make(run), repetitions=2, engine=_no_cache_engine())
        for run in design.runs()
    ]
    _assert_cells_identical(cells, reference)


def test_registry_appends_engine_note(cfg, tmp_path):
    from repro.experiments.registry import REGISTRY, register
    from repro.experiments.reporting import Table

    @register("enginetest", "engine note probe", "n/a")
    def _probe(quick=True):
        table = Table(title="probe", headers=["x"])
        res = replicate(cfg, repetitions=1)
        table.add_row(res.samples_received)
        return table

    try:
        engine = ExperimentEngine(workers=1, cache=CellCache(tmp_path))
        artifact = REGISTRY["enginetest"].run(engine=engine)
        assert any(note.startswith("engine: ") for note in artifact.notes)
        assert engine.stats.cells_submitted == 1
    finally:
        REGISTRY.pop("enginetest", None)


# ---------------------------------------------------------------------------
# Satellite fixes: sweep extras validation, MeanResults memoization
# ---------------------------------------------------------------------------


def test_sweep_validates_extra_keys(cfg):
    with pytest.raises(ValueError, match="bacth_size"):
        sweep(cfg, "sampling_period", [10_000.0], repetitions=1,
              engine=_no_cache_engine(), bacth_size=8)
    # Valid extras still apply.
    runs = sweep(cfg, "sampling_period", [10_000.0], repetitions=1,
                 engine=_no_cache_engine(), batch_size=8)
    assert runs[0].results[0].batches_received <= runs[0].results[0].samples_received


def test_mean_results_memoizes_numeric_means(cfg):
    res = replicate(cfg, repetitions=3, engine=_no_cache_engine())
    assert "pd_cpu_time_per_node" not in res.__dict__
    first = res.pd_cpu_time_per_node
    assert res.__dict__["pd_cpu_time_per_node"] == first
    assert res.pd_cpu_time_per_node == first
    import statistics

    assert first == pytest.approx(statistics.mean(res.raw("pd_cpu_time_per_node")))
    # Memoized attributes survive pickling and stay consistent.
    clone = pickle.loads(pickle.dumps(res))
    assert clone.pd_cpu_time_per_node == first


def test_mean_results_memoization_keeps_nan_semantics():
    empty = MeanResults([])
    assert empty.recovery_latency != empty.recovery_latency  # NaN
    # Second read comes from the instance dict and is still NaN.
    assert "recovery_latency" in empty.__dict__
    assert empty.recovery_latency != empty.recovery_latency
