"""Tests for per-cell fault isolation in replicate / sweep."""

import pytest

from repro.des import SimulationStalled
from repro.experiments import CellError, MeanResults, replicate, sweep
from repro.rocc import SimulationConfig


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(
        nodes=1,
        duration=400_000.0,
        sampling_period=20_000.0,
        include_pvmd=False,
        include_other=False,
        seed=5,
    )


def test_isolated_replicate_captures_watchdog_abort(cfg):
    bad = cfg.with_(max_events=10)  # every rep hits the watchdog
    res = replicate(bad, repetitions=2, isolate=True)
    assert res.results == []
    assert len(res.errors) == 2
    assert all(isinstance(e, CellError) for e in res.errors)
    assert "SimulationStalled" in res.errors[0].error
    assert "SimulationStalled" in res.errors[0].traceback


def test_unisolated_replicate_propagates(cfg):
    with pytest.raises(SimulationStalled):
        replicate(cfg.with_(max_events=10), repetitions=2)


def test_sweep_completes_with_partial_results(cfg):
    # 10 events stalls; 10 million completes.
    runs = sweep(
        cfg, "max_events", [10, 10_000_000], repetitions=1, isolate=True
    )
    assert len(runs) == 2
    assert runs[0].results == [] and len(runs[0].errors) == 1
    assert len(runs[1].results) == 1 and runs[1].errors == []
    assert runs[1].samples_received > 0


def test_sweep_survives_invalid_cell_value(cfg):
    runs = sweep(cfg, "batch_size", [0, 4], repetitions=1, isolate=True)
    assert len(runs) == 2
    assert runs[0].results == [] and "ValueError" in runs[0].errors[0].error
    assert len(runs[1].results) == 1


def test_cell_error_identifies_replication(cfg):
    res = replicate(cfg.with_(max_events=10), repetitions=3, isolate=True)
    assert [e.config_summary for e in res.errors] == [
        "now n=1 b=1 rep=0",
        "now n=1 b=1 rep=1",
        "now n=1 b=1 rep=2",
    ]


def test_empty_mean_results_behavior():
    empty = MeanResults([])
    # Numeric metrics degrade to NaN (mean over nothing).
    assert empty.pd_cpu_time_per_node != empty.pd_cpu_time_per_node
    # Non-numeric attributes raise AttributeError, so hasattr is False.
    assert not hasattr(empty, "config_summary")
    with pytest.raises(AttributeError):
        empty.config_summary
