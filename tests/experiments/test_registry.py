"""Tests for the experiment registry and CLI plumbing."""

import pytest

from repro.experiments import get, list_experiments
from repro.experiments.registry import REGISTRY, register


def test_all_paper_artifacts_registered():
    ids = {e.id for e in list_experiments()}
    expected = {
        "table1", "table2", "table3", "table4", "table5", "table6",
        "figure8", "figure9", "figure10", "figure12", "figure13",
        "figure14", "figure15", "figure16", "figure17", "figure18",
        "figure19", "figure20", "figure21", "figure22", "figure23",
        "figure24", "figure25", "figure26", "figure27", "figure28",
        "figure30", "figure31",
    }
    assert expected <= ids


def test_get_known():
    e = get("table1")
    assert e.id == "table1"
    assert "Table 1" in e.title


def test_get_unknown_lists_available():
    with pytest.raises(KeyError, match="available"):
        get("table99")


def test_double_registration_rejected():
    assert "table1" in REGISTRY
    with pytest.raises(ValueError):
        register("table1", "dup", "x")(lambda quick=True: None)


def test_experiments_sorted():
    ids = [e.id for e in list_experiments()]
    assert ids == sorted(ids)


def test_every_experiment_has_metadata():
    for e in list_experiments():
        assert e.title
        assert e.paper_ref
        assert callable(e.runner)


def test_cli_list(capsys):
    from repro.experiments.__main__ import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "figure31" in out


def test_cli_unknown_id(capsys):
    from repro.experiments.__main__ import main

    assert main(["nope"]) == 2


def test_cli_runs_fast_experiment(capsys):
    from repro.experiments.__main__ import main

    assert main(["figure9"]) == 0
    out = capsys.readouterr().out
    assert "analytic NOW" in out or "Figure 9" in out
    assert "completed in" in out
