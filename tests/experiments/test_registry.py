"""Tests for the experiment registry and CLI plumbing."""

import pytest

from repro.experiments import get, list_experiments
from repro.experiments.registry import REGISTRY, Experiment, register


def test_all_paper_artifacts_registered():
    ids = {e.id for e in list_experiments()}
    expected = {
        "table1", "table2", "table3", "table4", "table5", "table6",
        "figure8", "figure9", "figure10", "figure12", "figure13",
        "figure14", "figure15", "figure16", "figure17", "figure18",
        "figure19", "figure20", "figure21", "figure22", "figure23",
        "figure24", "figure25", "figure26", "figure27", "figure28",
        "figure30", "figure31",
    }
    assert expected <= ids


def test_get_known():
    e = get("table1")
    assert e.id == "table1"
    assert "Table 1" in e.title


def test_get_unknown_lists_available():
    with pytest.raises(KeyError, match="available"):
        get("table99")


def test_double_registration_rejected():
    assert "table1" in REGISTRY
    with pytest.raises(ValueError):
        register("table1", "dup", "x")(lambda quick=True: None)


def test_experiments_sorted():
    ids = [e.id for e in list_experiments()]
    assert ids == sorted(ids)


def test_every_experiment_has_metadata():
    for e in list_experiments():
        assert e.title
        assert e.paper_ref
        assert callable(e.runner)


def test_cli_list(capsys):
    from repro.experiments.__main__ import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "figure31" in out


def test_cli_unknown_id(capsys):
    from repro.experiments.__main__ import main

    assert main(["nope"]) == 2


def test_cli_runs_fast_experiment(capsys):
    from repro.experiments.__main__ import main

    assert main(["figure9"]) == 0
    out = capsys.readouterr().out
    assert "analytic NOW" in out or "Figure 9" in out
    assert "completed in" in out


def test_accepts_inspects_runner_signature():
    def runner(quick=True, workload=None):
        return None

    exp = Experiment(id="probe", title="t", paper_ref="r", runner=runner)
    assert exp.accepts("workload")
    assert exp.accepts("quick")
    assert not exp.accepts("nodes")


def test_accepts_var_keyword_accepts_anything():
    def runner(quick=True, **kwargs):
        return None

    exp = Experiment(id="probe", title="t", paper_ref="r", runner=runner)
    assert exp.accepts("anything_at_all")


def test_run_rejects_unknown_kwargs_with_id_and_signature():
    def my_runner(quick=True, depth=3):
        raise AssertionError("runner must not be reached")

    exp = Experiment(id="probe", title="t", paper_ref="r", runner=my_runner)
    with pytest.raises(TypeError) as err:
        exp.run(quick=True, dpeth=5)
    message = str(err.value)
    assert "'probe'" in message
    assert "dpeth" in message
    assert "my_runner(quick=True, depth=3)" in message


def test_run_forwards_known_kwargs():
    seen = {}

    def runner(quick=True, depth=3):
        seen["depth"] = depth
        return None

    exp = Experiment(id="probe", title="t", paper_ref="r", runner=runner)
    exp.run(quick=True, depth=7)
    assert seen == {"depth": 7}


def test_open_workload_experiment_registered():
    e = get("open_workload")
    assert e.accepts("workload")
