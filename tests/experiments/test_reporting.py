"""Tests for the reporting artifacts (tables, series, groups)."""

import math

import pytest

from repro.experiments import ArtifactGroup, SeriesSet, Table
from repro.experiments.reporting import fmt_value


class TestFmtValue:
    def test_ints_and_strings(self):
        assert fmt_value(7) == "7"
        assert fmt_value("abc") == "abc"
        assert fmt_value(True) == "True"

    def test_floats(self):
        assert fmt_value(3.14159) == "3.142"
        assert fmt_value(0.0) == "0"

    def test_nan_and_inf(self):
        assert fmt_value(float("nan")) == "-"
        assert fmt_value(float("inf")) == "inf"
        assert fmt_value(float("-inf")) == "-inf"

    def test_extreme_magnitudes_use_scientific(self):
        assert "e" in fmt_value(1.23e-7)
        assert "e" in fmt_value(9.9e12)


class TestTable:
    def test_add_row_validates_width(self):
        t = Table(title="t", headers=["a", "b"])
        t.add_row(1, 2)
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_access(self):
        t = Table(title="t", headers=["a", "b"])
        t.add_row(1, "x")
        t.add_row(2, "y")
        assert t.column("a") == [1, 2]
        with pytest.raises(KeyError):
            t.column("zzz")

    def test_format_aligned(self):
        t = Table(title="My Table", headers=["name", "value"],
                  notes=["a note"])
        t.add_row("alpha", 1.5)
        text = t.format()
        assert "My Table" in text
        assert "alpha" in text
        assert "note: a note" in text


class TestSeriesSet:
    def test_series_length_checked(self):
        s = SeriesSet(title="s", x_label="x", y_label="y", x=[1.0, 2.0])
        with pytest.raises(ValueError):
            s.add_series("bad", [1.0])
        s.add_series("ok", [1.0, 2.0])

    def test_format_contains_points(self):
        s = SeriesSet(title="curve", x_label="x", y_label="y", x=[1.0, 2.0])
        s.add_series("CF", [10.0, 20.0])
        s.add_series("BF", [1.0, 2.0])
        text = s.format()
        assert "CF" in text and "BF" in text
        assert "curve" in text
        assert "[y: y]" in text

    def test_nan_rendered_as_dash(self):
        s = SeriesSet(title="t", x_label="x", y_label="y", x=[1.0])
        s.add_series("a", [math.nan])
        assert "-" in s.format()


class TestArtifactGroup:
    def test_find(self):
        g = ArtifactGroup(title="fig")
        t = Table(title="inner panel", headers=["a"])
        g.add(t)
        assert g.find("inner") is t
        with pytest.raises(KeyError):
            g.find("missing")

    def test_format_concatenates(self):
        g = ArtifactGroup(title="Figure X", notes=["overall note"])
        g.add(Table(title="p1", headers=["a"]))
        g.add(SeriesSet(title="p2", x_label="x", y_label="y"))
        text = g.format()
        assert "Figure X" in text
        assert "p1" in text and "p2" in text
        assert "overall note" in text
