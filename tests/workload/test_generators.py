"""The open-workload traffic generators (lazy iterator streams)."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.generators import (
    MAX_USER_SAMPLING_WINDOW_S,
    MIN_USER_SAMPLING_WINDOW_S,
    TRAFFIC_REGISTRY,
    USERS_MARKER,
    BurstyWorkload,
    FlashCrowdWorkload,
    OpenWorkload,
    RVConfig,
    StationaryWorkload,
    TraceReplayWorkload,
    TrafficSpec,
    available_traffic,
    register_traffic,
    traffic_generator,
)


def take(gen, n):
    return list(itertools.islice(iter(gen), n))


def seq(seed=0):
    return np.random.SeedSequence(seed)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_all_generator_families_registered():
    assert set(available_traffic()) >= {
        "stationary", "replay", "bursty", "flashcrowd", "open",
    }


def test_unknown_generator_lists_available():
    with pytest.raises(ValueError, match="available.*stationary"):
        traffic_generator("bogus")


def test_double_registration_rejected():
    assert "stationary" in TRAFFIC_REGISTRY
    with pytest.raises(ValueError, match="already registered"):
        register_traffic("stationary")(StationaryWorkload)


# ---------------------------------------------------------------------------
# TrafficSpec
# ---------------------------------------------------------------------------


class TestTrafficSpec:
    def test_parse_name_only(self):
        spec = TrafficSpec.parse("stationary")
        assert spec.name == "stationary"
        assert spec.params == ()
        assert spec.label() == "stationary"

    def test_parse_with_params_round_trips(self):
        spec = TrafficSpec.parse("open:rpm=30,avg_users=200,window_s=0.5")
        assert spec.kwargs() == {"rpm": 30, "avg_users": 200, "window_s": 0.5}
        assert TrafficSpec.parse(spec.label()) == spec

    def test_params_sorted_for_equality(self):
        a = TrafficSpec.of("stationary", rate=50, alpha=1.0)
        b = TrafficSpec.of("stationary", alpha=1.0, rate=50)
        assert a == b
        assert hash(a) == hash(b)
        assert a.label() == b.label()

    def test_parse_value_types(self):
        spec = TrafficSpec.parse("replay:path=trace.txt,loop=true,scale=2")
        assert spec.kwargs() == {"path": "trace.txt", "loop": True, "scale": 2}

    def test_parse_malformed_parameter(self):
        with pytest.raises(ValueError, match="expected k=v"):
            TrafficSpec.parse("stationary:rate")
        with pytest.raises(ValueError, match="empty workload spec"):
            TrafficSpec.parse("   ")

    def test_coerce(self):
        spec = TrafficSpec.of("stationary", rate=10)
        assert TrafficSpec.coerce(spec) is spec
        assert TrafficSpec.coerce("stationary:rate=10") == spec
        assert TrafficSpec.coerce({"name": "stationary", "rate": 10}) == spec
        with pytest.raises(ValueError, match="'name'"):
            TrafficSpec.coerce({"rate": 10})
        with pytest.raises(TypeError):
            TrafficSpec.coerce(42)

    def test_validate_unknown_name(self):
        with pytest.raises(ValueError, match="unknown workload"):
            TrafficSpec.parse("nosuch:rate=1").validate()

    def test_validate_bad_parameters_names_workload(self):
        with pytest.raises(ValueError, match="bad parameters for workload"):
            TrafficSpec.parse("stationary:frequency=5").validate()

    def test_validate_bad_values_propagate(self):
        with pytest.raises(ValueError, match="rate"):
            TrafficSpec.parse("stationary:rate=-3").validate()

    def test_build_returns_generator(self):
        gen = TrafficSpec.parse("stationary:rate=5").build(4, seq())
        assert isinstance(gen, StationaryWorkload)
        assert gen.nodes == 4


# ---------------------------------------------------------------------------
# Determinism (the ISSUE's Hypothesis property)
# ---------------------------------------------------------------------------

_SPEC_STRATEGY = st.one_of(
    st.builds(
        lambda r, a: TrafficSpec.of("stationary", rate=r, alpha=a),
        st.floats(1.0, 500.0), st.floats(0.0, 2.0),
    ),
    st.builds(
        lambda r, p, d: TrafficSpec.of("bursty", rate=r, period_s=p, depth=d),
        st.floats(1.0, 500.0), st.floats(0.05, 2.0), st.floats(0.0, 0.95),
    ),
    st.builds(
        lambda r, m: TrafficSpec.of(
            "flashcrowd", rate=r, multiplier=m, first_at_s=0.1, duration_s=0.2
        ),
        st.floats(1.0, 200.0), st.floats(1.5, 20.0),
    ),
    st.builds(
        lambda u, rpm, w: TrafficSpec.of(
            "open", avg_users=u, rpm=rpm, window_s=w
        ),
        st.floats(1.0, 300.0), st.floats(1.0, 600.0), st.floats(0.05, 2.0),
    ),
)


@settings(max_examples=25, deadline=None)
@given(spec=_SPEC_STRATEGY, seed=st.integers(0, 2**32 - 1),
       nodes=st.integers(1, 16))
def test_same_seed_same_arrivals_across_iterations(spec, seed, nodes):
    """Iterating the same generator twice replays the identical stream."""
    gen = spec.build(nodes, np.random.SeedSequence(seed))
    first = take(gen, 64)
    second = take(gen, 64)
    assert first == second
    # ... and a rebuilt generator from the same (spec, seed) agrees too.
    rebuilt = spec.build(nodes, np.random.SeedSequence(seed))
    assert take(rebuilt, 64) == first


@settings(max_examples=25, deadline=None)
@given(spec=_SPEC_STRATEGY, seed=st.integers(0, 2**32 - 1),
       nodes=st.integers(1, 16))
def test_event_protocol_invariants(spec, seed, nodes):
    """Times non-decreasing and >= 0; nodes in range or USERS_MARKER."""
    gen = spec.build(nodes, np.random.SeedSequence(seed))
    last = 0.0
    for t, node, users in take(gen, 64):
        assert t >= 0.0 and t >= last
        last = t
        if node == USERS_MARKER:
            assert users >= 0.0
        else:
            assert 0 <= node < nodes
            assert users != users or users >= 0.0  # NaN or a level


def test_different_seeds_differ():
    spec = TrafficSpec.of("stationary", rate=100)
    a = take(spec.build(2, seq(1)), 32)
    b = take(spec.build(2, seq(2)), 32)
    assert a != b


# ---------------------------------------------------------------------------
# Stationary
# ---------------------------------------------------------------------------


def test_stationary_zero_rate_is_empty():
    gen = StationaryWorkload(nodes=4, seed_seq=seq(), rate=0.0)
    assert take(gen, 10) == []


def test_stationary_rate_matches_mean_interarrival():
    gen = StationaryWorkload(nodes=1, seed_seq=seq(7), rate=1000.0)
    events = take(gen, 4000)
    horizon_s = events[-1][0] / 1e6
    observed = len(events) / horizon_s
    assert observed == pytest.approx(1000.0, rel=0.1)


def test_stationary_zipf_skews_popularity():
    gen = StationaryWorkload(nodes=8, seed_seq=seq(3), rate=500.0, alpha=1.5)
    counts = [0] * 8
    for _, node, _ in take(gen, 4000):
        counts[node] += 1
    assert counts[0] > counts[3] > counts[7]


def test_stationary_rejects_negative_rate():
    with pytest.raises(ValueError, match="rate"):
        StationaryWorkload(nodes=1, seed_seq=seq(), rate=-1.0)
    with pytest.raises(ValueError, match="nodes"):
        StationaryWorkload(nodes=0, seed_seq=seq())


# ---------------------------------------------------------------------------
# Trace replay
# ---------------------------------------------------------------------------


class TestTraceReplay:
    def test_times_mode_replays_exactly(self):
        gen = TraceReplayWorkload(
            nodes=4, seed_seq=seq(), times=(10.0, 20.0, 35.0)
        )
        events = take(gen, 10)
        assert [t for t, _, _ in events] == [10.0, 20.0, 35.0]
        assert all(0 <= node < 4 for _, node, _ in events)

    def test_scale_dilates_time(self):
        gen = TraceReplayWorkload(
            nodes=1, seed_seq=seq(), times=(10.0, 20.0), scale=2.0
        )
        assert [t for t, _, _ in take(gen, 5)] == [20.0, 40.0]

    def test_loop_shifts_by_trace_end(self):
        gen = TraceReplayWorkload(
            nodes=1, seed_seq=seq(), times=(10.0, 30.0), loop=True
        )
        assert [t for t, _, _ in take(gen, 6)] == [
            10.0, 30.0, 40.0, 60.0, 70.0, 90.0,
        ]

    def test_file_mode_streams_lazily(self, tmp_path):
        trace = tmp_path / "trace.txt"
        trace.write_text(
            "# recorded on a 16-node cluster\n"
            "100 0\n"
            "250 13\n"
            "\n"
            "400  # node column optional\n"
        )
        gen = TraceReplayWorkload(nodes=4, seed_seq=seq(), path=str(trace))
        events = take(gen, 10)
        assert [t for t, _, _ in events] == [100.0, 250.0, 400.0]
        assert events[0][1] == 0
        assert events[1][1] == 13 % 4  # folded modulo node count
        assert 0 <= events[2][1] < 4

    def test_file_mode_rejects_malformed_line(self, tmp_path):
        trace = tmp_path / "bad.txt"
        trace.write_text("100\nnot-a-time\n")
        gen = TraceReplayWorkload(nodes=1, seed_seq=seq(), path=str(trace))
        with pytest.raises(ValueError, match="malformed trace line"):
            take(gen, 5)

    def test_file_mode_rejects_non_monotone(self, tmp_path):
        trace = tmp_path / "bad.txt"
        trace.write_text("100\n50\n")
        gen = TraceReplayWorkload(nodes=1, seed_seq=seq(), path=str(trace))
        with pytest.raises(ValueError, match="non-decreasing"):
            take(gen, 5)

    def test_times_validated_eagerly(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TraceReplayWorkload(nodes=1, seed_seq=seq(), times=(5.0, 1.0))
        with pytest.raises(ValueError, match="finite"):
            TraceReplayWorkload(nodes=1, seed_seq=seq(),
                                times=(float("inf"),))

    def test_exactly_one_source_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            TraceReplayWorkload(nodes=1, seed_seq=seq())
        with pytest.raises(ValueError, match="exactly one"):
            TraceReplayWorkload(nodes=1, seed_seq=seq(), path="x",
                                times=(1.0,))


# ---------------------------------------------------------------------------
# Bursty / flash crowd
# ---------------------------------------------------------------------------


def test_bursty_depth_validated():
    with pytest.raises(ValueError, match="depth"):
        BurstyWorkload(nodes=1, seed_seq=seq(), depth=1.0)
    with pytest.raises(ValueError, match="depth"):
        BurstyWorkload(nodes=1, seed_seq=seq(), depth=-0.1)


def test_bursty_zero_depth_matches_stationary_rate():
    gen = BurstyWorkload(nodes=1, seed_seq=seq(11), rate=1000.0, depth=0.0)
    events = take(gen, 4000)
    observed = len(events) / (events[-1][0] / 1e6)
    assert observed == pytest.approx(1000.0, rel=0.1)


def test_bursty_modulation_moves_arrivals_into_peaks():
    # period 1 s, full-depth: peak density at t=0.25 s, trough at 0.75 s.
    gen = BurstyWorkload(nodes=1, seed_seq=seq(13), rate=2000.0,
                         period_s=1.0, depth=0.9)
    peak = trough = 0
    for t, _, _ in take(gen, 6000):
        phase = (t / 1e6) % 1.0
        if 0.0 <= phase < 0.5:
            peak += 1
        else:
            trough += 1
    assert peak > 1.5 * trough


def test_flashcrowd_surge_is_denser():
    gen = FlashCrowdWorkload(nodes=1, seed_seq=seq(17), rate=200.0,
                             multiplier=10.0, first_at_s=1.0,
                             duration_s=0.5, every_s=0.0)
    inside = outside = 0
    for t, _, _ in take(gen, 3000):
        if t >= 2.0e6:
            break
        if 1.0e6 <= t < 1.5e6:
            inside += 1
        else:
            outside += 1
    # 0.5 s of 2000 req/s vs 1.5 s of 200 req/s baseline.
    assert inside > 2 * outside


def test_flashcrowd_validation():
    with pytest.raises(ValueError, match="multiplier"):
        FlashCrowdWorkload(nodes=1, seed_seq=seq(), multiplier=1.0)
    with pytest.raises(ValueError, match="every_s"):
        FlashCrowdWorkload(nodes=1, seed_seq=seq(), duration_s=2.0,
                           every_s=1.0)


# ---------------------------------------------------------------------------
# Open (AsyncFlow-style) model
# ---------------------------------------------------------------------------


class TestRVConfig:
    def test_mean_must_be_positive(self):
        with pytest.raises(ValueError, match="mean must be positive"):
            RVConfig(mean=0.0)
        with pytest.raises(ValueError, match="mean must be positive"):
            RVConfig(mean=-5.0)

    def test_distribution_whitelist(self):
        with pytest.raises(ValueError, match="distribution"):
            RVConfig(mean=1.0, distribution="lognormal")

    def test_normal_variance_defaults_to_mean(self):
        rv = RVConfig(mean=40.0, distribution="normal")
        assert rv.variance == 40.0
        assert RVConfig(mean=40.0, distribution="normal", variance=4.0).variance == 4.0

    def test_poisson_variance_left_alone(self):
        assert RVConfig(mean=40.0).variance is None

    def test_samples_are_non_negative(self):
        rng = np.random.Generator(np.random.PCG64(0))
        rv = RVConfig(mean=1.0, distribution="normal", variance=100.0)
        assert all(rv.sample(rng) >= 0.0 for _ in range(200))


class TestOpenWorkload:
    def test_emits_users_markers_at_window_starts(self):
        gen = OpenWorkload(nodes=2, seed_seq=seq(19), avg_users=50.0,
                           rpm=120.0, window_s=0.5)
        events = take(gen, 200)
        markers = [(t, u) for t, node, u in events if node == USERS_MARKER]
        assert [t for t, _ in markers[:3]] == [0.0, 0.5e6, 1.0e6]
        assert all(u == u and u >= 0.0 for _, u in markers)

    def test_requests_carry_window_user_level(self):
        gen = OpenWorkload(nodes=2, seed_seq=seq(23), avg_users=80.0,
                           rpm=300.0, window_s=0.5)
        level = None
        for t, node, users in take(gen, 300):
            if node == USERS_MARKER:
                level = users
            else:
                assert users == level

    def test_offered_rate_tracks_users_times_rpm(self):
        gen = OpenWorkload(nodes=1, seed_seq=seq(29), avg_users=100.0,
                           rpm=600.0, window_s=1.0)
        arrivals = [e for e in take(gen, 6000) if e[1] != USERS_MARKER]
        horizon_s = arrivals[-1][0] / 1e6
        observed = len(arrivals) / horizon_s
        assert observed == pytest.approx(100.0 * 600.0 / 60.0, rel=0.15)

    def test_window_bounds_enforced(self):
        with pytest.raises(ValueError, match="window_s"):
            OpenWorkload(nodes=1, seed_seq=seq(),
                         window_s=MIN_USER_SAMPLING_WINDOW_S / 2)
        with pytest.raises(ValueError, match="window_s"):
            OpenWorkload(nodes=1, seed_seq=seq(),
                         window_s=MAX_USER_SAMPLING_WINDOW_S * 2)

    def test_rpm_must_be_positive(self):
        with pytest.raises(ValueError, match="mean must be positive"):
            OpenWorkload(nodes=1, seed_seq=seq(), rpm=-5.0)

    def test_normal_users_distribution(self):
        gen = OpenWorkload(nodes=1, seed_seq=seq(31), avg_users=30.0,
                           users_dist="normal", users_var=4.0, rpm=60.0,
                           window_s=0.25)
        levels = [u for _, node, u in take(gen, 400)
                  if node == USERS_MARKER]
        assert len(levels) > 5
        assert sum(levels) / len(levels) == pytest.approx(30.0, abs=5.0)


def test_non_marker_events_have_nan_users_without_user_model():
    gen = StationaryWorkload(nodes=2, seed_seq=seq(), rate=50.0)
    assert all(math.isnan(u) for _, _, u in take(gen, 20))
