"""Tests for the characterization pipeline (Tables 1 and 2)."""

import pytest

from repro.workload import (
    PVMBT,
    AIXTraceFacility,
    ProcessType,
    ResourceKind,
    TracingConfig,
    build_parameters,
    fit_requests,
    summarize,
)
from repro.workload.characterize import OccupancyStats


@pytest.fixture(scope="module")
def trace():
    cfg = TracingConfig(duration=6_000_000.0, seed=13, trace_main_process=True)
    return AIXTraceFacility(PVMBT, cfg).trace()


class TestOccupancyStats:
    def test_from_data(self):
        s = OccupancyStats.from_data([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0

    def test_empty(self):
        s = OccupancyStats.from_data([])
        assert s.count == 0
        assert s.mean != s.mean  # NaN


class TestSummarize:
    def test_recovers_table1_app_moments(self, trace):
        summary = summarize(trace)
        app_cpu = summary.cpu[ProcessType.APPLICATION]
        assert app_cpu.mean == pytest.approx(2213.0, rel=0.12)
        assert app_cpu.std == pytest.approx(3034.0, rel=0.25)
        app_net = summary.network[ProcessType.APPLICATION]
        assert app_net.mean == pytest.approx(223.0, rel=0.12)

    def test_recovers_table1_daemon_moments(self, trace):
        summary = summarize(trace)
        pd_cpu = summary.cpu[ProcessType.PARADYN_DAEMON]
        assert pd_cpu.mean == pytest.approx(267.0, rel=0.2)

    def test_format_contains_all_types(self, trace):
        text = summarize(trace).format()
        for t in ("application", "paradyn_daemon", "pvm_daemon", "other"):
            assert t in text


class TestFitRequests:
    def test_paper_family_conclusions(self, trace):
        """Figure 8 / Table 2: app CPU is lognormal, app network is
        exponential, Pd CPU is exponential."""
        fits = {
            (f.process_type, f.resource): f.family for f in fit_requests(trace)
        }
        assert fits[(ProcessType.APPLICATION, ResourceKind.CPU)] == "lognormal"
        assert fits[(ProcessType.APPLICATION, ResourceKind.NETWORK)] == "exponential"
        assert fits[(ProcessType.PARADYN_DAEMON, ResourceKind.CPU)] == "exponential"

    def test_all_fits_have_candidates(self, trace):
        for fit in fit_requests(trace):
            assert len(fit.candidates) == 3


class TestBuildParameters:
    def test_parameters_near_table2(self, trace):
        params = build_parameters(trace)
        assert params.app_cpu.mean == pytest.approx(2213.0, rel=0.12)
        assert params.app_network.mean == pytest.approx(223.0, rel=0.12)
        assert params.pd_cpu.mean == pytest.approx(267.0, rel=0.2)

    def test_missing_classes_keep_defaults(self):
        from repro.workload import TraceFile

        params = build_parameters(TraceFile())
        assert params.app_cpu.mean == 2213.0
        assert params.pd_network.mean == 71.0

    def test_roundtrip_simulation_matches_measurement(self, trace):
        """§2.4 validation loop: parameterize the simulator from the trace
        and check the simulated Pd CPU time against the 'measured' one."""
        from repro.rocc import SimulationConfig, simulate

        params = build_parameters(trace)
        duration = 3_000_000.0
        sim = simulate(
            SimulationConfig(
                nodes=1, duration=duration, sampling_period=40_000.0,
                workload=params, seed=13,
            )
        )
        measured_rate = trace.busy_time(
            process_type=ProcessType.APPLICATION, resource=ResourceKind.CPU
        ) / trace.span()
        sim_rate = sim.app_cpu_time_per_node / duration
        assert sim_rate == pytest.approx(measured_rate, rel=0.15)
