"""Tests for trace records and trace files."""

import io

import pytest

from repro.workload import ProcessType, ResourceKind, TraceFile, TraceRecord


def make_record(t=0.0, node=0, pid=1, ptype=ProcessType.APPLICATION,
                res=ResourceKind.CPU, dur=10.0):
    return TraceRecord(t, node, pid, ptype, res, dur)


def test_record_end():
    r = make_record(t=5.0, dur=3.5)
    assert r.end() == 8.5


def test_append_and_len():
    tf = TraceFile()
    tf.append(make_record())
    tf.extend([make_record(t=1), make_record(t=2)])
    assert len(tf) == 3


def test_filter_by_type_and_resource():
    tf = TraceFile(
        [
            make_record(ptype=ProcessType.APPLICATION, res=ResourceKind.CPU),
            make_record(ptype=ProcessType.APPLICATION, res=ResourceKind.NETWORK),
            make_record(ptype=ProcessType.PARADYN_DAEMON, res=ResourceKind.CPU),
        ]
    )
    assert len(tf.filter(process_type=ProcessType.APPLICATION)) == 2
    assert len(tf.filter(resource=ResourceKind.CPU)) == 2
    assert (
        len(
            tf.filter(
                process_type=ProcessType.APPLICATION, resource=ResourceKind.CPU
            )
        )
        == 1
    )


def test_filter_by_node():
    tf = TraceFile([make_record(node=0), make_record(node=1)])
    assert len(tf.filter(node=1)) == 1


def test_durations_and_busy_time():
    tf = TraceFile(
        [
            make_record(dur=10.0),
            make_record(dur=20.0),
            make_record(ptype=ProcessType.OTHER, dur=100.0),
        ]
    )
    assert tf.durations(process_type=ProcessType.APPLICATION) == [10.0, 20.0]
    assert tf.busy_time(process_type=ProcessType.APPLICATION) == 30.0
    assert tf.busy_time() == 130.0


def test_cpu_time_by_type():
    tf = TraceFile(
        [
            make_record(dur=10.0, res=ResourceKind.CPU),
            make_record(dur=99.0, res=ResourceKind.NETWORK),
            make_record(ptype=ProcessType.OTHER, dur=5.0, res=ResourceKind.CPU),
        ]
    )
    by_type = tf.cpu_time_by_type()
    assert by_type[ProcessType.APPLICATION] == 10.0
    assert by_type[ProcessType.OTHER] == 5.0


def test_span():
    tf = TraceFile([make_record(t=10, dur=5), make_record(t=2, dur=1)])
    assert tf.span() == 13.0
    assert TraceFile().span() == 0.0


def test_sort():
    tf = TraceFile([make_record(t=5), make_record(t=1)])
    tf.sort()
    assert [r.timestamp for r in tf] == [1.0, 5.0]


def test_csv_roundtrip():
    tf = TraceFile(
        [
            make_record(t=1.5, node=2, pid=7, dur=3.25),
            make_record(
                t=2.0, ptype=ProcessType.PVM_DAEMON, res=ResourceKind.NETWORK
            ),
        ]
    )
    buf = io.StringIO()
    tf.to_csv(buf)
    buf.seek(0)
    back = TraceFile.from_csv(buf)
    assert back.records == tf.records


def test_csv_roundtrip_file(tmp_path):
    tf = TraceFile([make_record()])
    path = tmp_path / "trace.csv"
    tf.to_csv(path)
    assert TraceFile.from_csv(path).records == tf.records


def test_window_selects_intersecting_records():
    tf = TraceFile(
        [
            make_record(t=0, dur=5),     # ends at 5: outside [10, 20)
            make_record(t=8, dur=5),     # spans the boundary: inside
            make_record(t=12, dur=2),    # fully inside
            make_record(t=19, dur=10),   # starts inside
            make_record(t=25, dur=1),    # after: outside
        ]
    )
    w = tf.window(10, 20)
    assert [r.timestamp for r in w] == [8.0, 12.0, 19.0]


def test_window_validation():
    with pytest.raises(ValueError):
        TraceFile().window(5, 5)


def test_csv_bad_header_rejected():
    buf = io.StringIO("a,b,c\n1,2,3\n")
    with pytest.raises(ValueError):
        TraceFile.from_csv(buf)
