"""Tests for the Figure 6 / Figure 7 process state machines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    DETAILED_TRANSITIONS,
    DetailedState,
    ProcessStateMachine,
    SimpleState,
    legal_sequence,
    simplify,
)

S = DetailedState


def test_machine_starts_at_admit():
    m = ProcessStateMachine()
    assert m.state is S.ADMIT
    assert not m.terminated


def test_legal_lifecycle_walk():
    m = ProcessStateMachine()
    walk = [S.READY, S.RUNNING, S.COMMUNICATION, S.RUNNING, S.READY,
            S.RUNNING, S.BLOCKED, S.READY, S.RUNNING, S.EXIT]
    for s in walk:
        m.step(s)
    assert m.terminated


def test_illegal_transition_rejected():
    m = ProcessStateMachine()
    with pytest.raises(ValueError, match="illegal transition"):
        m.step(S.RUNNING)  # must go through READY first


def test_exit_is_terminal():
    m = ProcessStateMachine()
    m.step(S.READY)
    m.step(S.RUNNING)
    m.step(S.EXIT)
    assert m.allowed() == frozenset()
    with pytest.raises(ValueError):
        m.step(S.READY)


def test_fork_logs_and_returns_to_running():
    m = ProcessStateMachine()
    m.step(S.READY)
    m.step(S.RUNNING)
    label = m.step(S.FORK)
    assert label == "spawn"
    assert m.step(S.RUNNING) == "log the new process"


def test_transition_labels_match_figure6():
    assert DETAILED_TRANSITIONS[S.RUNNING][S.READY] == "time out"
    assert DETAILED_TRANSITIONS[S.BLOCKED][S.READY] == "resource available"
    assert DETAILED_TRANSITIONS[S.COMMUNICATION][S.RUNNING] == "done"


def test_simplify_mapping():
    assert simplify(S.RUNNING) is SimpleState.COMPUTATION
    assert simplify(S.COMMUNICATION) is SimpleState.COMMUNICATION
    assert simplify(S.READY) is None
    assert simplify(S.BLOCKED) is None


def test_simple_history_alternates():
    m = ProcessStateMachine()
    for s in (S.READY, S.RUNNING, S.COMMUNICATION, S.RUNNING,
              S.COMMUNICATION, S.RUNNING, S.EXIT):
        m.step(s)
    simple = m.simple_history()
    assert simple == [
        SimpleState.COMPUTATION,
        SimpleState.COMMUNICATION,
        SimpleState.COMPUTATION,
        SimpleState.COMMUNICATION,
        SimpleState.COMPUTATION,
    ]
    for a, b in zip(simple, simple[1:]):
        assert a is not b


def test_legal_sequence_helper():
    assert legal_sequence([S.ADMIT, S.READY, S.RUNNING, S.EXIT])
    assert not legal_sequence([S.READY, S.RUNNING])  # must start at ADMIT
    assert not legal_sequence([S.ADMIT, S.RUNNING])


@given(st.lists(st.sampled_from(list(DetailedState)), max_size=12))
@settings(max_examples=200)
def test_legal_sequence_agrees_with_machine(states):
    """legal_sequence must accept exactly the walks the machine accepts."""
    expected = True
    if not states or states[0] is not S.ADMIT:
        expected = False
    else:
        m = ProcessStateMachine()
        for s in states[1:]:
            try:
                m.step(s)
            except ValueError:
                expected = False
                break
    assert legal_sequence(states) == expected


@given(st.data())
@settings(max_examples=100)
def test_random_legal_walk_never_raises(data):
    """Any walk that follows allowed() is accepted and keeps history."""
    m = ProcessStateMachine()
    for _ in range(15):
        allowed = sorted(m.allowed(), key=lambda s: s.value)
        if not allowed:
            break
        nxt = data.draw(st.sampled_from(allowed))
        m.step(nxt)
    assert len(m.history) >= 1
