"""Tests for the NAS benchmark profiles and workload parameters."""

import pytest

from repro.workload import (
    PAPER_PARAMETERS,
    PVMBT,
    PVMIS,
    ProcessType,
    WorkloadParameters,
    benchmark_by_name,
)


def test_benchmark_lookup():
    assert benchmark_by_name("pvmbt") is PVMBT
    assert benchmark_by_name("pvmis") is PVMIS
    with pytest.raises(KeyError):
        benchmark_by_name("pvmep")


def test_pvmbt_matches_table1():
    app = PVMBT.profile(ProcessType.APPLICATION)
    assert app.cpu.mean == 2213.0
    assert app.cpu.std == 3034.0
    assert app.network.mean == 223.0
    pd = PVMBT.profile(ProcessType.PARADYN_DAEMON)
    assert pd.cpu.mean == 267.0
    assert pd.network.mean == 71.0


def test_pvmbt_open_processes_have_interarrivals():
    pvmd = PVMBT.profile(ProcessType.PVM_DAEMON)
    assert pvmd.cpu_interarrival is not None
    other = PVMBT.profile(ProcessType.OTHER)
    assert other.cpu_interarrival.mean == 31_485.0
    assert other.network_interarrival.mean == 5_598_903.0


def test_application_profile_is_closed():
    app = PVMBT.profile(ProcessType.APPLICATION)
    assert app.cpu_interarrival is None
    assert app.network_interarrival is None


def test_missing_profile_raises():
    from repro.workload.nas import BenchmarkProfile

    empty = BenchmarkProfile(name="x", description="", processes={})
    with pytest.raises(KeyError):
        empty.profile(ProcessType.APPLICATION)


def test_pvmis_stays_cpu_bound():
    """Section 5 scope: both benchmarks are CPU-intensive SPMD codes."""
    app = PVMIS.profile(ProcessType.APPLICATION)
    duty = app.cpu.mean / (app.cpu.mean + app.network.mean)
    assert duty > 0.85


class TestWorkloadParameters:
    def test_paper_defaults_match_table2(self):
        p = PAPER_PARAMETERS
        assert p.app_cpu.mean == 2213.0
        assert p.app_network.mean == 223.0
        assert p.pd_cpu.mean == 267.0
        assert p.pd_network.mean == 71.0
        assert p.pvmd_cpu.mean == 294.0
        assert p.pvmd_interarrival.mean == 6485.0
        assert p.other_cpu.mean == 367.0
        assert p.other_cpu_interarrival.mean == 31_485.0
        assert p.other_network_interarrival.mean == 5_598_903.0
        assert p.cpu_quantum == 10_000.0

    def test_pdm_defaults_to_pd_cpu(self):
        p = WorkloadParameters()
        assert p.pdm_cpu is p.pd_cpu
        assert p.d_pdm_cpu == p.d_pd_cpu

    def test_with_network_demand(self):
        p = WorkloadParameters().with_network_demand(2000.0)
        assert p.app_network.mean == 2000.0
        # Original untouched.
        assert WorkloadParameters().app_network.mean == 223.0

    def test_demand_properties(self):
        p = WorkloadParameters()
        assert p.d_pd_cpu == 267.0
        assert p.d_pd_network == 71.0
        assert p.d_app_cpu == 2213.0
        assert p.d_main_cpu == 3208.0
