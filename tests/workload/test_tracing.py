"""Tests for the synthetic AIX tracing facility."""

import pytest

from repro.workload import (
    PVMBT,
    PVMIS,
    AIXTraceFacility,
    ProcessType,
    ResourceKind,
    TracingConfig,
)


@pytest.fixture(scope="module")
def trace():
    cfg = TracingConfig(duration=3_000_000.0, seed=5, trace_main_process=True)
    return AIXTraceFacility(PVMBT, cfg).trace()


def test_trace_is_time_sorted(trace):
    stamps = [r.timestamp for r in trace]
    assert stamps == sorted(stamps)


def test_trace_covers_duration(trace):
    assert trace.span() >= 2_500_000.0


def test_all_process_types_present(trace):
    types = {r.process_type for r in trace}
    assert ProcessType.APPLICATION in types
    assert ProcessType.PARADYN_DAEMON in types
    assert ProcessType.PVM_DAEMON in types
    assert ProcessType.OTHER in types
    assert ProcessType.PARADYN_MAIN in types


def test_main_process_absent_without_flag():
    cfg = TracingConfig(duration=500_000.0, seed=5, trace_main_process=False)
    trace = AIXTraceFacility(PVMBT, cfg).trace()
    assert not any(r.process_type is ProcessType.PARADYN_MAIN for r in trace)


def test_app_alternates_cpu_network(trace):
    app = [
        r
        for r in trace.records
        if r.process_type is ProcessType.APPLICATION and r.node == 0
    ]
    kinds = [r.resource for r in app]
    for a, b in zip(kinds, kinds[1:]):
        assert a != b, "application must alternate computation/communication"


def test_app_records_within_duration(trace):
    for r in trace.records:
        assert 0 <= r.timestamp < 3_000_000.0


def test_app_moments_match_profile(trace):
    import numpy as np

    cpu = trace.durations(
        process_type=ProcessType.APPLICATION, resource=ResourceKind.CPU
    )
    assert np.mean(cpu) == pytest.approx(2213.0, rel=0.15)
    net = trace.durations(
        process_type=ProcessType.APPLICATION, resource=ResourceKind.NETWORK
    )
    assert np.mean(net) == pytest.approx(223.0, rel=0.15)


def test_daemon_samples_once_per_period(trace):
    pd_cpu = trace.filter(
        process_type=ProcessType.PARADYN_DAEMON, resource=ResourceKind.CPU
    )
    # One collection per 40 ms over 3 s, minus the first period.
    expected = int(3_000_000 / 40_000) - 1
    assert abs(len(pd_cpu) - expected) <= 2


def test_batch_size_reduces_network_records():
    cfg1 = TracingConfig(duration=3_000_000.0, seed=5, batch_size=1)
    cfg8 = TracingConfig(duration=3_000_000.0, seed=5, batch_size=8)
    net1 = AIXTraceFacility(PVMBT, cfg1).trace().filter(
        process_type=ProcessType.PARADYN_DAEMON, resource=ResourceKind.NETWORK
    )
    net8 = AIXTraceFacility(PVMBT, cfg8).trace().filter(
        process_type=ProcessType.PARADYN_DAEMON, resource=ResourceKind.NETWORK
    )
    assert len(net8) < len(net1)
    assert len(net8) == pytest.approx(len(net1) / 8, abs=2)


def test_multiple_nodes_have_distinct_streams():
    cfg = TracingConfig(duration=500_000.0, nodes=2, seed=5)
    trace = AIXTraceFacility(PVMBT, cfg).trace()
    d0 = trace.durations(process_type=ProcessType.APPLICATION)
    n0 = trace.filter(node=0).durations(process_type=ProcessType.APPLICATION)
    n1 = trace.filter(node=1).durations(process_type=ProcessType.APPLICATION)
    assert len(n0) + len(n1) == len(d0)
    assert n0 != n1


def test_reproducible():
    cfg = TracingConfig(duration=500_000.0, seed=5)
    t1 = AIXTraceFacility(PVMBT, cfg).trace()
    t2 = AIXTraceFacility(PVMBT, cfg).trace()
    assert t1.records == t2.records


def test_pvmis_profile_differs():
    cfg = TracingConfig(duration=1_000_000.0, seed=5)
    bt = AIXTraceFacility(PVMBT, cfg).trace()
    is_ = AIXTraceFacility(PVMIS, cfg).trace()
    import numpy as np

    bt_cpu = np.mean(bt.durations(process_type=ProcessType.APPLICATION,
                                  resource=ResourceKind.CPU))
    is_cpu = np.mean(is_.durations(process_type=ProcessType.APPLICATION,
                                   resource=ResourceKind.CPU))
    assert is_cpu < bt_cpu
