"""Tests for trace-playback (Empirical) parameterization."""

import pytest

from repro.variates.distributions import Empirical
from repro.workload import (
    PVMBT,
    AIXTraceFacility,
    TraceFile,
    TracingConfig,
    build_empirical_parameters,
)


@pytest.fixture(scope="module")
def trace():
    return AIXTraceFacility(
        PVMBT, TracingConfig(duration=4_000_000.0, seed=19)
    ).trace()


def test_empirical_distributions_built(trace):
    params = build_empirical_parameters(trace)
    assert isinstance(params.app_cpu, Empirical)
    assert isinstance(params.app_network, Empirical)
    assert isinstance(params.pd_cpu, Empirical)


def test_moments_match_trace(trace):
    import numpy as np

    from repro.workload import ProcessType, ResourceKind

    params = build_empirical_parameters(trace)
    data = [
        d
        for d in trace.durations(
            process_type=ProcessType.APPLICATION, resource=ResourceKind.CPU
        )
        if d > 0
    ]
    assert params.app_cpu.mean == pytest.approx(float(np.mean(data)))


def test_sparse_pairs_keep_defaults():
    params = build_empirical_parameters(TraceFile())
    assert params.app_cpu.mean == 2213.0  # Table 2 default
    assert not isinstance(params.app_cpu, Empirical)


def test_playback_simulation_matches_fitted(trace):
    """Driving the simulator from the raw trace should land near the
    fitted-distribution parameterization on the headline metric."""
    from repro.rocc import SimulationConfig, simulate
    from repro.workload import build_parameters

    kw = dict(nodes=1, duration=2_000_000.0, sampling_period=20_000.0, seed=19)
    fitted = simulate(
        SimulationConfig(workload=build_parameters(trace), **kw)
    )
    playback = simulate(
        SimulationConfig(workload=build_empirical_parameters(trace), **kw)
    )
    assert playback.app_cpu_utilization_per_node == pytest.approx(
        fitted.app_cpu_utilization_per_node, rel=0.1
    )
    assert playback.pd_cpu_time_per_node == pytest.approx(
        fitted.pd_cpu_time_per_node, rel=0.3
    )
