"""Unit tests for the tracing core (repro.obs.spans)."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.obs import (
    SIM,
    WALL,
    SpanBatch,
    Tracer,
    current_tracer,
    maybe_span,
    sim_track_pid,
    start_tracing,
    stop_tracing,
    trace_path_from_env,
    tracing_enabled,
    use_tracing,
    wall_now_us,
)


def test_tracing_is_off_by_default() -> None:
    assert current_tracer() is None
    assert not tracing_enabled()


def test_use_tracing_installs_and_restores() -> None:
    assert current_tracer() is None
    with use_tracing() as tracer:
        assert current_tracer() is tracer
        with use_tracing() as inner:
            assert current_tracer() is inner
        assert current_tracer() is tracer
    assert current_tracer() is None


def test_start_stop_tracing() -> None:
    tracer = start_tracing()
    try:
        assert current_tracer() is tracer
    finally:
        assert stop_tracing() is tracer
    assert current_tracer() is None


def test_span_context_manager_fills_timing() -> None:
    tracer = Tracer()
    with tracer.span("work", cat="test", args={"k": 1}) as span:
        span.args["extra"] = 2
    assert len(tracer.spans) == 1
    recorded = tracer.spans[0]
    assert recorded.name == "work"
    assert recorded.args == {"k": 1, "extra": 2}
    assert recorded.dur >= 0.0
    assert recorded.domain == WALL
    assert abs(recorded.ts - wall_now_us()) < 60_000_000  # within a minute


def test_span_recorded_even_when_body_raises() -> None:
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert [s.name for s in tracer.spans] == ["doomed"]


def test_maybe_span_is_noop_without_tracer() -> None:
    with maybe_span("nothing") as span:
        assert span is None


def test_maybe_span_records_with_tracer() -> None:
    with use_tracing() as tracer:
        with maybe_span("something", cat="c") as span:
            assert span is not None
    assert [s.name for s in tracer.spans] == ["something"]


def test_negative_duration_clamped() -> None:
    tracer = Tracer()
    span = tracer.add_span("x", cat="c", ts=10.0, dur=-5.0)
    assert span.dur == 0.0


def test_sim_track_pid_deterministic_and_clear_of_os_pids() -> None:
    pid = sim_track_pid("now n=4 seed=0 rep=0")
    assert pid == sim_track_pid("now n=4 seed=0 rep=0")
    assert pid != sim_track_pid("now n=4 seed=0 rep=1")
    assert pid >= 0x40000000  # well above real pids


def test_batch_roundtrips_through_pickle() -> None:
    tracer = Tracer(pid=1234, process_name="worker")
    tracer.add_span("s", cat="c", ts=0.0, dur=1.0, tid="t")
    tracer.add_counter("busy", 5.0, {"level": 2.0}, pid=99)
    batch = pickle.loads(pickle.dumps(tracer.batch()))
    assert isinstance(batch, SpanBatch)
    assert batch.pid == 1234
    assert batch.spans[0].name == "s"
    assert batch.counters[0].values == {"level": 2.0}


def test_merge_combines_batches_without_clobbering_names() -> None:
    parent = Tracer(pid=1, process_name="parent")
    worker = Tracer(pid=2, process_name="worker")
    worker.add_span("cell", cat="c", ts=0.0, dur=1.0)
    worker.name_process(1, "impostor")  # must not override parent's name
    parent.merge(worker.batch())
    assert len(parent.spans) == 1
    assert parent.track_names[(1, None)] == "parent"
    assert parent.track_names[(2, None)] == "worker"


@pytest.mark.parametrize(
    "raw,expected",
    [
        ("", None),
        ("0", None),
        ("off", None),
        ("1", "repro-trace.json"),
        ("on", "repro-trace.json"),
        ("/tmp/my-trace.jsonl", "/tmp/my-trace.jsonl"),
    ],
)
def test_trace_path_from_env(raw: str, expected, monkeypatch) -> None:
    monkeypatch.setenv("REPRO_TRACE", raw)
    assert trace_path_from_env() == expected


def test_trace_path_unset(monkeypatch) -> None:
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert trace_path_from_env() is None
