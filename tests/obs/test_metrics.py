"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import math

import pytest

from repro.obs import MetricsRegistry, diff_snapshots, registry


@pytest.fixture
def reg() -> MetricsRegistry:
    return MetricsRegistry()


def test_counter_only_goes_up(reg: MetricsRegistry) -> None:
    c = reg.counter("c")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways(reg: MetricsRegistry) -> None:
    g = reg.gauge("g")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13.0


def test_histogram_stats(reg: MetricsRegistry) -> None:
    h = reg.histogram("h")
    for v in (0.5, 2.0, 10.0):
        h.observe(v)
    assert h.count == 3
    assert h.mean == pytest.approx(12.5 / 3)
    assert h.minimum == 0.5
    assert h.maximum == 10.0
    assert sum(h.bucket_counts) == 3


def test_empty_histogram_is_nan(reg: MetricsRegistry) -> None:
    h = reg.histogram("h")
    assert math.isnan(h.mean)
    assert math.isnan(h.minimum)
    assert math.isnan(h.maximum)


def test_get_or_create_returns_same_object(reg: MetricsRegistry) -> None:
    assert reg.counter("x") is reg.counter("x")


def test_kind_mismatch_raises(reg: MetricsRegistry) -> None:
    reg.counter("x")
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("x")


def test_reset_zeroes_in_place(reg: MetricsRegistry) -> None:
    c = reg.counter("c")
    h = reg.histogram("h")
    c.inc(5)
    h.observe(1.0)
    reg.reset()
    assert c.value == 0.0  # the cached reference, not a new object
    assert h.count == 0
    assert reg.counter("c") is c


def test_snapshot_is_json_safe(reg: MetricsRegistry) -> None:
    import json

    reg.counter("c").inc(2)
    reg.gauge("g").set(7)
    reg.histogram("h").observe(0.3)
    snap = reg.snapshot()
    json.dumps(snap)  # must not raise
    assert snap["c"] == {"type": "counter", "value": 2.0}
    assert snap["g"]["value"] == 7.0
    assert snap["h"]["count"] == 1


def test_diff_and_merge_roundtrip(reg: MetricsRegistry) -> None:
    c = reg.counter("c")
    h = reg.histogram("h")
    c.inc(3)
    h.observe(1.0)
    before = reg.snapshot()
    c.inc(2)
    h.observe(5.0)
    delta = diff_snapshots(before, reg.snapshot())
    assert delta["c"]["value"] == 2.0
    assert delta["h"]["count"] == 1
    assert delta["h"]["sum"] == 5.0

    other = MetricsRegistry()
    other.counter("c").inc(10)
    other.merge_snapshot(delta)
    assert other.counter("c").value == 12.0
    assert other.histogram("h").count == 1


def test_diff_skips_unchanged_metrics(reg: MetricsRegistry) -> None:
    reg.counter("c").inc(3)
    snap = reg.snapshot()
    assert diff_snapshots(snap, reg.snapshot()) == {}


def test_merge_rejects_bounds_mismatch(reg: MetricsRegistry) -> None:
    reg.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
    snap = reg.snapshot()
    other = MetricsRegistry()
    other.histogram("h", bounds=(5.0, 6.0))
    with pytest.raises(ValueError, match="bounds mismatch"):
        other.merge_snapshot(snap)


def test_global_registry_is_a_singleton() -> None:
    assert registry() is registry()


def test_format_renders_every_metric(reg: MetricsRegistry) -> None:
    reg.counter("a.count").inc()
    reg.gauge("b.level").set(2)
    reg.histogram("c.lat").observe(0.1)
    text = reg.format()
    for name in ("a.count", "b.level", "c.lat"):
        assert name in text
