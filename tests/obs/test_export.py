"""Unit tests for the exporters and the trace validator (repro.obs.export)."""

from __future__ import annotations

import json

from repro.obs import (
    SIM,
    Tracer,
    chrome_trace,
    export_trace,
    registry,
    sim_track_pid,
    summarize,
    trace_events,
    validate_trace_events,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry


def _tracer_with_nesting() -> Tracer:
    tracer = Tracer(pid=100, process_name="p")
    # parent [0, 100], child [10, 40], sibling [50, 90]
    tracer.add_span("parent", cat="c", ts=0.0, dur=100.0)
    tracer.add_span("child", cat="c", ts=10.0, dur=30.0)
    tracer.add_span("sibling", cat="c", ts=50.0, dur=40.0)
    return tracer


def test_nested_spans_emit_balanced_pairs() -> None:
    events = trace_events(_tracer_with_nesting())
    assert validate_trace_events(events) == []
    names = [(e["ph"], e["name"]) for e in events if e["ph"] in "BE"]
    assert names == [
        ("B", "parent"),
        ("B", "child"),
        ("E", "child"),
        ("B", "sibling"),
        ("E", "sibling"),
        ("E", "parent"),
    ]


def test_overlapping_spans_are_clamped_not_crossed() -> None:
    tracer = Tracer(pid=100, process_name="p")
    tracer.add_span("a", cat="c", ts=0.0, dur=50.0)
    tracer.add_span("b", cat="c", ts=40.0, dur=50.0)  # crosses a's end
    events = trace_events(tracer)
    assert validate_trace_events(events) == []


def test_ts_globally_monotone_across_tracks() -> None:
    tracer = Tracer(pid=1, process_name="p")
    tracer.add_span("x", cat="c", ts=30.0, dur=5.0, tid="t1")
    tracer.add_span("y", cat="c", ts=10.0, dur=5.0, tid="t2")
    tracer.add_counter("lvl", 20.0, {"v": 1.0}, pid=7)
    events = [e for e in trace_events(tracer) if e["ph"] != "M"]
    ts = [e["ts"] for e in events]
    assert ts == sorted(ts)


def test_wall_spans_rebased_to_origin() -> None:
    tracer = Tracer(pid=1, process_name="p")
    tracer.add_span("w", cat="c", ts=1_000_000.0, dur=5.0)  # wall
    tracer.add_span("s", cat="c", ts=3.0, dur=2.0, pid=sim_track_pid("r"),
                    domain=SIM)
    events = trace_events(tracer)
    wall_b = next(e for e in events if e["name"] == "w" and e["ph"] == "B")
    sim_b = next(e for e in events if e["name"] == "s" and e["ph"] == "B")
    assert wall_b["ts"] == 0.0  # rebased to trace origin
    assert sim_b["ts"] == 3.0  # sim time untouched


def test_string_tids_become_integers_with_names() -> None:
    tracer = Tracer(pid=5, process_name="p")
    tracer.add_span("x", cat="c", ts=0.0, dur=1.0, tid="node0")
    tracer.add_span("y", cat="c", ts=2.0, dur=1.0, tid="node1")
    events = trace_events(tracer)
    for e in events:
        assert isinstance(e["tid"], int)
    thread_names = {
        e["args"]["name"] for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {"node0", "node1"} <= thread_names


def test_validator_flags_broken_traces() -> None:
    assert validate_trace_events({"not": "a trace"})
    assert validate_trace_events(
        [{"ph": "B", "name": "x", "ts": 1, "pid": 1, "tid": 1}]
    )  # unclosed B
    assert validate_trace_events(
        [{"ph": "E", "name": "x", "ts": 1, "pid": 1, "tid": 1}]
    )  # E without B
    assert validate_trace_events(
        [
            {"ph": "C", "name": "c", "ts": 5, "pid": 1, "tid": 0, "args": {}},
            {"ph": "C", "name": "c", "ts": 1, "pid": 1, "tid": 0, "args": {}},
        ]
    )  # ts goes backwards
    assert validate_trace_events([{"ph": "B", "name": "x"}])  # no ts


def test_chrome_trace_document_shape(tmp_path) -> None:
    reg = MetricsRegistry()
    reg.counter("k").inc(3)
    doc = chrome_trace(_tracer_with_nesting(), reg)
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["metrics"]["k"]["value"] == 3.0
    path = export_trace(_tracer_with_nesting(), tmp_path / "t.json", reg)
    reloaded = json.loads(path.read_text())
    assert validate_trace_events(reloaded) == []


def test_jsonl_export_one_record_per_line(tmp_path) -> None:
    tracer = _tracer_with_nesting()
    tracer.add_counter("lvl", 1.0, {"v": 2.0})
    reg = MetricsRegistry()
    reg.gauge("g").set(1)
    path = write_jsonl(tracer, tmp_path / "t.jsonl", reg)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    by_type = {}
    for r in records:
        by_type.setdefault(r["type"], []).append(r)
    assert len(by_type["span"]) == 3
    assert len(by_type["counter"]) == 1
    assert len(by_type["metric"]) == 1


def test_export_trace_picks_format_by_suffix(tmp_path) -> None:
    tracer = _tracer_with_nesting()
    json_doc = json.loads(export_trace(tracer, tmp_path / "a.json").read_text())
    assert "traceEvents" in json_doc
    jsonl_lines = export_trace(tracer, tmp_path / "a.jsonl").read_text()
    assert all(json.loads(line)["type"] for line in jsonl_lines.splitlines())


def test_summarize_mentions_spans_and_metrics() -> None:
    reg = MetricsRegistry()
    reg.counter("my.metric").inc()
    text = summarize(_tracer_with_nesting(), reg)
    assert "3 spans" in text
    assert "my.metric" in text


def test_empty_tracer_exports_cleanly(tmp_path) -> None:
    tracer = Tracer(pid=1, process_name="empty")
    doc = chrome_trace(tracer)
    assert validate_trace_events(doc) == []
    assert summarize(tracer).startswith("trace summary: 0 spans")
