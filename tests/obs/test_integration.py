"""Integration tests: observability threaded through the real stack.

Covers the acceptance shape in-process (no subprocess): a traced
4-node NOW engine run produces spans from the engine-cell,
simulation-run, and resource-occupancy layers, and the trace survives
export + validation.  Also pins the zero-cost contract: an untraced
run records nothing and its results carry an empty ``observability``.
"""

from __future__ import annotations

import pytest

from repro.experiments import CellCache, ExperimentEngine
from repro.obs import (
    Tracer,
    chrome_trace,
    current_tracer,
    registry,
    use_tracing,
    validate_trace_events,
)
from repro.rocc import Architecture, SimulationConfig, simulate

NOW_CONFIG = SimulationConfig(
    architecture=Architecture.NOW,
    nodes=4,
    duration=400_000.0,
    sampling_period=20_000.0,
    batch_size=2,
    seed=11,
)


@pytest.fixture()
def engine(tmp_path):
    with ExperimentEngine(
        workers=1, cache=CellCache(tmp_path / "cache", enabled=False)
    ) as eng:
        yield eng


def test_traced_now_run_covers_three_layers(engine) -> None:
    registry().reset()
    with use_tracing() as tracer:
        [result] = engine.run_cells([NOW_CONFIG])

    spans = tracer.batch().spans
    cats = {s.cat for s in spans}
    assert {"engine.cell", "run", "occupancy"} <= cats

    # Per-node CPU occupancy tracks exist for the 4 NOW nodes.
    occupancy_tids = {s.tid for s in spans if s.cat == "occupancy"}
    assert {f"node{i}.cpu" for i in range(4)} <= occupancy_tids

    # Counter samples back the occupancy Gantt tracks.
    tracks = {c.name for c in tracer.batch().counters}
    assert any(name.endswith(".cpu.level") for name in tracks)

    # The run advertises what it recorded.
    assert result.observability["occupancy_spans"] > 0
    assert result.observability["counter_samples"] > 0
    assert "sim_track" in result.observability

    # And the whole thing exports to a valid Chrome trace.
    doc = chrome_trace(tracer, registry())
    assert validate_trace_events(doc) == []
    assert registry().counter("rocc.runs").value == 1


def test_untraced_run_records_nothing(engine) -> None:
    assert current_tracer() is None
    [result] = engine.run_cells([NOW_CONFIG])
    assert result.observability == {}


def test_tracing_does_not_perturb_results(engine) -> None:
    """Observability must be read-only: identical RNG stream, identical
    sampled metrics, traced or not."""
    [plain] = engine.run_cells([NOW_CONFIG])
    with use_tracing():
        [traced] = engine.run_cells([NOW_CONFIG])
    assert traced.pd_cpu_time_per_node == plain.pd_cpu_time_per_node
    assert traced.samples_received == plain.samples_received
    assert traced.delivery_ratio == plain.delivery_ratio


def test_direct_simulate_honours_ambient_tracer() -> None:
    """rocc.simulate() picks up the ambient tracer without the engine."""
    tracer = Tracer()
    with use_tracing(tracer):
        simulate(NOW_CONFIG)
    cats = {s.cat for s in tracer.batch().spans}
    assert "run" in cats
    assert "occupancy" in cats
