"""Tests for 2^k factorial designs and sign tables."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.expdesign import Factor, FactorialDesign


def design_2():
    return FactorialDesign(
        [Factor("nodes", 2, 32, "A"), Factor("period", 5.0, 50.0, "B")]
    )


def test_factor_level():
    f = Factor("x", 1, 10, "A")
    assert f.level(-1) == 1
    assert f.level(1) == 10
    with pytest.raises(ValueError):
        f.level(0)


def test_needs_factors():
    with pytest.raises(ValueError):
        FactorialDesign([])


def test_duplicate_labels_rejected():
    with pytest.raises(ValueError):
        FactorialDesign([Factor("a", 0, 1, "A"), Factor("alpha", 0, 1, "A")])


def test_default_label_from_name():
    d = FactorialDesign([Factor("nodes", 0, 1)])
    assert d.labels == ["N"]


def test_run_count():
    assert design_2().n_runs == 4
    d3 = FactorialDesign([Factor(n, 0, 1, n) for n in "XYZ"])
    assert d3.n_runs == 8


def test_runs_standard_order():
    runs = list(design_2().runs())
    assert runs == [
        {"nodes": 2, "period": 5.0},
        {"nodes": 32, "period": 5.0},
        {"nodes": 2, "period": 50.0},
        {"nodes": 32, "period": 50.0},
    ]


def test_signs_balanced():
    signs = design_2().signs()
    assert signs.shape == (4, 2)
    assert (signs.sum(axis=0) == 0).all()


def test_effect_columns_orthogonal():
    d = FactorialDesign([Factor(n, 0, 1, n) for n in "ABC"])
    labels, cols = d.effect_columns()
    assert labels == ["A", "B", "C", "AB", "AC", "BC", "ABC"]
    assert cols.shape == (8, 7)
    gram = cols.T @ cols
    np.testing.assert_array_equal(gram, 8 * np.eye(7, dtype=int))


def test_interaction_column_is_product():
    d = design_2()
    labels, cols = d.effect_columns()
    signs = d.signs()
    ab = cols[:, labels.index("AB")]
    np.testing.assert_array_equal(ab, signs[:, 0] * signs[:, 1])


def test_run_label():
    d = design_2()
    assert d.run_label(0) == "A- B-"
    assert d.run_label(3) == "A+ B+"


@given(st.integers(min_value=1, max_value=6))
def test_columns_all_balanced_and_pm_one(k):
    d = FactorialDesign([Factor(f"f{i}", 0, 1, chr(65 + i)) for i in range(k)])
    labels, cols = d.effect_columns()
    assert cols.shape == (2**k, 2**k - 1)
    assert set(np.unique(cols)) <= {-1, 1}
    assert (cols.sum(axis=0) == 0).all()
