"""Tests for allocation of variation (the paper's 'PCA')."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expdesign import Factor, FactorialDesign, allocate_variation


def design(k=2):
    return FactorialDesign([Factor(f"f{i}", -1, 1, chr(65 + i)) for i in range(k)])


def additive_responses(d, effects, noise=0.0, reps=1, seed=0):
    """Build y = mean + sum_e q_e * sign_e + noise for known effects."""
    rng = np.random.default_rng(seed)
    labels, cols = d.effect_columns()
    y = np.full(d.n_runs, 10.0)
    for label, q in effects.items():
        y = y + q * cols[:, labels.index(label)]
    out = np.tile(y[:, None], (1, reps))
    if noise:
        out = out + rng.normal(0, noise, out.shape)
    return out


def test_single_effect_explains_everything():
    d = design(2)
    y = additive_responses(d, {"A": 3.0})
    res = allocate_variation(d, y)
    assert res.fraction("A") == pytest.approx(1.0)
    assert res.fraction("B") == pytest.approx(0.0)
    assert res.error_fraction == pytest.approx(0.0)


def test_effect_estimates_recovered_exactly():
    d = design(3)
    truth = {"A": 2.0, "B": -1.0, "AB": 0.5, "C": 0.25}
    y = additive_responses(d, truth)
    res = allocate_variation(d, y)
    for s in res.shares:
        assert s.effect == pytest.approx(truth.get(s.label, 0.0), abs=1e-12)
    assert res.mean == pytest.approx(10.0)


def test_fractions_sum_to_one_with_noise():
    d = design(3)
    y = additive_responses(d, {"A": 2.0, "B": 1.0}, noise=0.3, reps=5)
    res = allocate_variation(d, y)
    total = sum(s.fraction for s in res.shares) + res.error_fraction
    assert total == pytest.approx(1.0)
    assert res.error_fraction > 0


def test_relative_importance_ordering():
    d = design(2)
    y = additive_responses(d, {"A": 5.0, "B": 1.0}, noise=0.1, reps=4)
    res = allocate_variation(d, y)
    top = res.top(2)
    assert top[0].label == "A"
    assert top[1].label == "B"
    assert res.fraction("A") > 0.9


def test_confidence_intervals_with_repetitions():
    d = design(2)
    y = additive_responses(d, {"A": 5.0}, noise=0.2, reps=10, seed=3)
    res = allocate_variation(d, y)
    a = next(s for s in res.shares if s.label == "A")
    assert a.ci_low is not None and a.ci_low < 5.0 < a.ci_high
    assert a.significant
    b = next(s for s in res.shares if s.label == "B")
    assert not b.significant  # CI includes zero


def test_no_ci_single_rep():
    d = design(2)
    res = allocate_variation(d, additive_responses(d, {"A": 1.0}))
    assert all(s.ci_low is None for s in res.shares)
    assert all(s.significant for s in res.shares)


def test_wrong_row_count_rejected():
    d = design(2)
    with pytest.raises(ValueError):
        allocate_variation(d, [[1.0], [2.0]])


def test_nan_rejected_with_helpful_message():
    d = design(2)
    y = additive_responses(d, {"A": 1.0}).astype(float)
    y[0, 0] = np.nan
    with pytest.raises(ValueError, match="NaN"):
        allocate_variation(d, y)


def test_format_and_percentages():
    d = design(2)
    res = allocate_variation(d, additive_responses(d, {"A": 3.0, "B": 1.0}))
    pct = res.as_percentages()
    assert pct["A"] == pytest.approx(90.0)
    assert pct["B"] == pytest.approx(10.0)
    assert "A 90.0%" in res.format()


def test_unknown_label_raises():
    d = design(2)
    res = allocate_variation(d, additive_responses(d, {"A": 1.0}))
    with pytest.raises(KeyError):
        res.fraction("Z")


_effect = st.one_of(
    st.just(0.0),
    # Keep effects well above float-addition underflow vs the mean of 10.
    st.floats(min_value=1e-3, max_value=5),
    st.floats(min_value=-5, max_value=-1e-3),
)


@given(qa=_effect, qb=_effect, qab=_effect)
@settings(max_examples=60)
def test_decomposition_is_exact_property(qa, qb, qab):
    """For noiseless additive data the SS decomposition is exact:
    fractions are proportional to squared effects."""
    d = design(2)
    y = additive_responses(d, {"A": qa, "B": qb, "AB": qab})
    ss = qa**2 + qb**2 + qab**2
    res = allocate_variation(d, y)
    if ss == 0:
        assert res.total_variation == pytest.approx(0.0, abs=1e-18)
    else:
        assert res.fraction("A") == pytest.approx(qa**2 / ss, abs=1e-9)
        assert res.fraction("AB") == pytest.approx(qab**2 / ss, abs=1e-9)
