"""Tests for PCA proper."""

import numpy as np
import pytest

from repro.expdesign import pca


def test_shape_validation():
    with pytest.raises(ValueError):
        pca([1.0, 2.0])
    with pytest.raises(ValueError):
        pca([[1.0, 2.0]])


def test_ratios_sum_to_one(rng):
    X = rng.normal(size=(40, 4))
    res = pca(X)
    assert res.explained_variance_ratio.sum() == pytest.approx(1.0)


def test_dominant_direction_found(rng):
    t = rng.normal(size=200)
    X = np.column_stack([t, 2 * t + rng.normal(0, 0.01, 200),
                         rng.normal(0, 0.01, 200)])
    res = pca(X, standardize=False)
    assert res.explained_variance_ratio[0] > 0.99
    # The first component loads on variables 0 and 1, not 2.
    assert abs(res.loading(0, 2)) < 0.05


def test_components_orthonormal(rng):
    X = rng.normal(size=(30, 5))
    res = pca(X)
    gram = res.components @ res.components.T
    np.testing.assert_allclose(gram, np.eye(res.n_components), atol=1e-10)


def test_n_components_truncation(rng):
    X = rng.normal(size=(30, 5))
    res = pca(X, n_components=2)
    assert res.components.shape == (2, 5)
    assert res.scores.shape == (30, 2)


def test_standardization_equalizes_scales(rng):
    # One variable with huge scale must not dominate after standardizing.
    X = np.column_stack([rng.normal(0, 1000, 100), rng.normal(0, 1, 100)])
    res = pca(X, standardize=True)
    assert res.explained_variance_ratio[0] < 0.8


def test_scores_reproduce_data(rng):
    X = rng.normal(size=(20, 3))
    res = pca(X, standardize=False)
    reconstructed = res.scores @ res.components + res.mean
    np.testing.assert_allclose(reconstructed, X, atol=1e-10)


def test_dominant_variable(rng):
    t = rng.normal(size=100)
    X = np.column_stack([0.1 * t, t, rng.normal(0, 0.01, 100)])
    res = pca(X, standardize=False)
    assert res.dominant_variable(0) == 1


def test_constant_column_handled(rng):
    X = np.column_stack([np.full(20, 3.0), rng.normal(size=20)])
    res = pca(X)  # must not divide by zero
    assert np.isfinite(res.components).all()
