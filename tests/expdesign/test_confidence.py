"""Tests for confidence intervals and repetition sizing."""

import numpy as np
import pytest

from repro.expdesign import mean_confidence_interval, repetitions_needed


def test_single_observation_degenerate():
    ci = mean_confidence_interval([1.0])
    assert ci.degenerate
    assert ci.n == 1
    assert ci.mean == 1.0
    assert ci.low == float("-inf") and ci.high == float("inf")
    assert ci.half_width == float("inf")
    assert ci.relative_half_width == float("inf")
    assert ci.contains(42.0)  # an uninformative interval excludes nothing


def test_empty_sample_degenerate():
    ci = mean_confidence_interval([])
    assert ci.degenerate
    assert ci.n == 0
    assert ci.mean != ci.mean  # NaN
    assert ci.half_width == float("inf")
    assert ci.relative_half_width == float("inf")


def test_zero_variance_zero_width():
    ci = mean_confidence_interval([5.0, 5.0, 5.0, 5.0])
    assert not ci.degenerate
    assert ci.mean == 5.0
    assert ci.half_width == 0.0
    assert ci.relative_half_width == 0.0
    assert ci.contains(5.0) and not ci.contains(5.0001)


def test_level_validation():
    with pytest.raises(ValueError):
        mean_confidence_interval([1.0, 2.0], level=1.5)


def test_interval_contains_mean():
    ci = mean_confidence_interval([1.0, 2.0, 3.0], level=0.90)
    assert ci.mean == pytest.approx(2.0)
    assert ci.low < 2.0 < ci.high
    assert ci.contains(2.0)
    assert not ci.contains(100.0)


def test_matches_scipy_t_interval(rng):
    from scipy import stats

    data = rng.normal(10.0, 2.0, 30)
    ci = mean_confidence_interval(data, level=0.95)
    lo, hi = stats.t.interval(
        0.95, len(data) - 1, loc=np.mean(data),
        scale=stats.sem(data, ddof=1),
    )
    assert ci.low == pytest.approx(lo)
    assert ci.high == pytest.approx(hi)


def test_higher_level_wider_interval(rng):
    data = rng.normal(size=20)
    narrow = mean_confidence_interval(data, level=0.80)
    wide = mean_confidence_interval(data, level=0.99)
    assert wide.half_width > narrow.half_width


def test_coverage_about_right():
    """~90 % of 90 % CIs should contain the true mean."""
    rng = np.random.default_rng(7)
    hits = 0
    trials = 400
    for _ in range(trials):
        data = rng.normal(5.0, 1.0, 10)
        if mean_confidence_interval(data, level=0.90).contains(5.0):
            hits += 1
    assert hits / trials == pytest.approx(0.90, abs=0.05)


def test_relative_half_width():
    ci = mean_confidence_interval([10.0, 10.0, 10.2, 9.8])
    assert ci.relative_half_width < 0.05
    zero = mean_confidence_interval([-1.0, 1.0])
    assert zero.relative_half_width == float("inf")


def test_repetitions_needed_scales_with_precision(rng):
    pilot = rng.normal(100.0, 20.0, 10)
    loose = repetitions_needed(pilot, target_relative_half_width=0.2)
    tight = repetitions_needed(pilot, target_relative_half_width=0.02)
    assert tight > loose
    assert tight >= 100 * loose // 110  # roughly quadratic


def test_repetitions_needed_validation():
    with pytest.raises(ValueError):
        repetitions_needed([1.0, 2.0], 0.0)
    with pytest.raises(ValueError):
        repetitions_needed([1.0, 2.0], 0.1, level=1.2)


def test_repetitions_needed_degenerate_pilots():
    # <2 finite observations: no variance estimate, no extrapolation —
    # the answer is the smallest sample a CI can be formed from.
    assert repetitions_needed([1.0], 0.1) == 2
    assert repetitions_needed([], 0.1) == 2
    assert repetitions_needed([1.0, float("nan"), float("inf")], 0.1) == 2


def test_repetitions_needed_zero_variance_converged():
    assert repetitions_needed([3.0, 3.0, 3.0], 0.01) == 3


def test_repetitions_needed_zero_mean_no_extrapolation():
    # The relative criterion is undefined at x̄ = 0; the pilot size comes
    # back instead of a div-by-zero surprise.
    assert repetitions_needed([-1.0, 1.0], 0.1) == 2
    assert repetitions_needed([-2.0, 0.0, 2.0], 0.1) == 3


def test_repetitions_needed_filters_nonfinite(rng):
    clean = rng.normal(100.0, 20.0, 10)
    noisy = list(clean) + [float("nan"), float("inf")]
    assert repetitions_needed(noisy, 0.05) == repetitions_needed(clean, 0.05)


def test_repetitions_at_least_pilot_size(rng):
    pilot = rng.normal(100.0, 0.001, 25)
    assert repetitions_needed(pilot, 0.5) == 25


def test_nonfinite_observations_excluded():
    clean = mean_confidence_interval([1.0, 2.0, 3.0])
    noisy = mean_confidence_interval(
        [1.0, float("nan"), 2.0, float("inf"), 3.0]
    )
    assert noisy.mean == pytest.approx(clean.mean)
    assert noisy.low == pytest.approx(clean.low)
    assert noisy.high == pytest.approx(clean.high)
    assert noisy.n == 3


def test_too_few_finite_observations_degenerate():
    ci = mean_confidence_interval([1.0, float("nan"), float("nan")])
    assert ci.degenerate and ci.n == 1 and ci.mean == 1.0
    all_nan = mean_confidence_interval([float("nan")] * 5)
    assert all_nan.degenerate and all_nan.n == 0
    assert all_nan.relative_half_width == float("inf")
