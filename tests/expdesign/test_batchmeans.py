"""Tests for the method of batch means."""

import numpy as np
import pytest

from repro.expdesign import batch_means, lag1_autocorrelation


def test_lag1_of_iid_near_zero(rng):
    x = rng.normal(size=10_000)
    assert abs(lag1_autocorrelation(x)) < 0.05


def test_lag1_of_positively_correlated_series(rng):
    x = np.cumsum(rng.normal(size=2000))  # random walk: strong correlation
    assert lag1_autocorrelation(x) > 0.9


def test_lag1_edge_cases():
    assert lag1_autocorrelation([1.0]) == 0.0
    assert lag1_autocorrelation([3.0, 3.0, 3.0]) == 0.0


def test_batch_means_iid_ci_contains_mean(rng):
    x = rng.normal(7.0, 2.0, 5000)
    res = batch_means(x, n_batches=20)
    assert res.ci.contains(7.0)
    assert res.n_batches == 20
    assert res.batch_size == 250
    assert res.batches_look_independent


def test_batch_means_warmup_discarded(rng):
    # Strong initial transient followed by stationarity around 10.
    transient = np.full(500, 100.0)
    steady = rng.normal(10.0, 1.0, 4500)
    x = np.concatenate([transient, steady])
    biased = batch_means(x, n_batches=10)
    clean = batch_means(x, n_batches=10, warmup=500)
    assert abs(clean.ci.mean - 10.0) < abs(biased.ci.mean - 10.0)
    assert clean.ci.contains(10.0)


def test_batch_means_correlated_series_flagged(rng):
    # AR(1) with high phi: batch means at small k stay correlated.
    phi, n = 0.999, 4000
    eps = rng.normal(size=n)
    x = np.empty(n)
    x[0] = eps[0]
    for i in range(1, n):
        x[i] = phi * x[i - 1] + eps[i]
    res = batch_means(x, n_batches=40)
    assert abs(res.batch_lag1) > 2.0 / np.sqrt(40)
    assert not res.batches_look_independent


def test_batch_means_validation(rng):
    x = rng.normal(size=100)
    with pytest.raises(ValueError):
        batch_means(x, n_batches=1)
    with pytest.raises(ValueError):
        batch_means(x, n_batches=60)
    with pytest.raises(ValueError):
        batch_means(x, warmup=-1)


def test_batch_means_discards_tail(rng):
    x = rng.normal(size=103)
    res = batch_means(x, n_batches=10)
    assert res.batch_size == 10
    assert res.discarded == 3


def test_batch_means_on_simulation_latency():
    """End-to-end: steady-state CI on per-sample forwarding latency."""
    from repro.des import Tally
    from repro.rocc import ParadynISSystem, SimulationConfig

    cfg = SimulationConfig(nodes=2, duration=4_000_000.0,
                           sampling_period=5_000.0, seed=3)
    system = ParadynISSystem(cfg)
    system.metrics.latency_forwarding = Tally("lat", keep_series=True)
    system.run()
    series = system.metrics.latency_forwarding.series
    assert len(series) > 400
    res = batch_means(series, n_batches=15, warmup=50)
    assert res.ci.low > 0
    assert res.ci.contains(float(np.mean(series[50:])))
