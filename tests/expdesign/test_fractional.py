"""Tests for 2^(k-p) fractional factorial designs."""

import numpy as np
import pytest

from repro.expdesign import Factor, FractionalFactorialDesign
from repro.expdesign.fractional import _word_mul


def half_fraction_2_4_1():
    """2^(4-1) with D = ABC (resolution IV)."""
    base = [Factor("a", -1, 1, "A"), Factor("b", -1, 1, "B"),
            Factor("c", -1, 1, "C")]
    return FractionalFactorialDesign(
        base_factors=base,
        generators={Factor("d", -1, 1, "D"): "ABC"},
    )


def test_word_multiplication():
    assert _word_mul("AB", "BC") == "AC"
    assert _word_mul("A", "A") == "I"
    assert _word_mul("ABC", "I") == "ABC"
    assert _word_mul("AB", "CD") == "ABCD"


def test_run_count_halved():
    d = half_fraction_2_4_1()
    assert d.k == 4
    assert d.p == 1
    assert d.n_runs == 8
    assert len(list(d.runs())) == 8


def test_generated_factor_is_product_of_bases():
    d = half_fraction_2_4_1()
    labels, signs = d.signs()
    idx = {lab: i for i, lab in enumerate(labels)}
    prod = signs[:, idx["A"]] * signs[:, idx["B"]] * signs[:, idx["C"]]
    np.testing.assert_array_equal(signs[:, idx["D"]], prod)


def test_runs_carry_generated_levels():
    d = half_fraction_2_4_1()
    for run, row in zip(d.runs(), d.signs()[1]):
        pass  # smoke: runs() and signs() agree in length
    runs = list(d.runs())
    assert all(set(r) == {"a", "b", "c", "d"} for r in runs)


def test_defining_relation_and_resolution():
    d = half_fraction_2_4_1()
    assert d.defining_relation() == ["I", "ABCD"]
    assert d.resolution == 4


def test_aliases_resolution_iv():
    d = half_fraction_2_4_1()
    # Main effects alias with three-way interactions only.
    assert d.aliases("A") == ["BCD"]
    assert d.aliases("AB") == ["CD"]


def test_two_generators():
    base = [Factor(n, -1, 1, n) for n in "ABC"]
    d = FractionalFactorialDesign(
        base_factors=base,
        generators={
            Factor("d", -1, 1, "D"): "AB",
            Factor("e", -1, 1, "E"): "AC",
        },
    )
    assert d.n_runs == 8
    assert d.k == 5
    rel = d.defining_relation()
    assert "ABD" in rel and "ACE" in rel
    # Product word BDCE (= ABD * ACE) is in the subgroup too.
    assert _word_mul("ABD", "ACE") in rel
    assert d.resolution == 3


def test_validation():
    base = [Factor("a", -1, 1, "A")]
    with pytest.raises(ValueError):
        FractionalFactorialDesign(
            base_factors=base, generators={Factor("x", 0, 1, "A"): "A"}
        )
    with pytest.raises(ValueError):
        FractionalFactorialDesign(
            base_factors=base, generators={Factor("e", 0, 1, "E"): "AZ"}
        )


def test_columns_balanced():
    d = half_fraction_2_4_1()
    _, signs = d.signs()
    assert (signs.sum(axis=0) == 0).all()


def test_estimate_effects_recovers_aliased_sum():
    """In the half fraction, the A contrast estimates q_A + q_BCD; with
    data built from pure main effects it recovers them exactly."""
    d = half_fraction_2_4_1()
    labels, signs = d.signs()
    idx = {lab: i for i, lab in enumerate(labels)}
    truth = {"A": 2.0, "B": -1.0, "D": 0.5}
    y = np.full(d.n_runs, 10.0)
    for lab, q in truth.items():
        y = y + q * signs[:, idx[lab]]
    effects = d.estimate_effects(y)
    # D = ABC, so the ABC contrast carries q_D.
    assert effects["A=BCD"] == pytest.approx(2.0)
    assert effects["B=ACD"] == pytest.approx(-1.0)
    assert effects["D=ABC"] == pytest.approx(0.5)
    assert effects["C=ABD"] == pytest.approx(0.0)


def test_estimate_effects_validates_shape():
    d = half_fraction_2_4_1()
    with pytest.raises(ValueError):
        d.estimate_effects([[1.0]] * 4)


def test_estimate_effects_confounding_is_real():
    """Put equal-and-opposite effects on aliased words: the contrast
    sees their sum (zero) — the fraction genuinely cannot tell."""
    d = half_fraction_2_4_1()
    labels, signs = d.signs()
    idx = {lab: i for i, lab in enumerate(labels)}
    col_a = signs[:, idx["A"]]
    col_bcd = signs[:, idx["B"]] * signs[:, idx["C"]] * signs[:, idx["D"]]
    y = 10.0 + 3.0 * col_a - 3.0 * col_bcd
    effects = d.estimate_effects(y)
    assert effects["A=BCD"] == pytest.approx(0.0, abs=1e-12)


def test_aliased_effects_have_identical_columns():
    """The sign column of an effect equals that of its alias — the
    definition of confounding."""
    d = half_fraction_2_4_1()
    labels, signs = d.signs()
    idx = {lab: i for i, lab in enumerate(labels)}
    col_a = signs[:, idx["A"]]
    col_bcd = signs[:, idx["B"]] * signs[:, idx["C"]] * signs[:, idx["D"]]
    np.testing.assert_array_equal(col_a, col_bcd)
