"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des import Environment
from repro.rocc import SimulationConfig


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden-master snapshots under tests/golden/ "
        "instead of comparing against them",
    )


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def fast_config() -> SimulationConfig:
    """A small, fast ROCC configuration for integration tests."""
    return SimulationConfig(
        nodes=2,
        duration=1_000_000.0,  # 1 simulated second
        sampling_period=20_000.0,
        batch_size=1,
        seed=99,
    )
