"""Tests for the distribution library: moments, pdf/cdf/ppf coherence."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.variates import (
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    Lognormal,
    Normal,
    Pareto,
    Uniform,
    Weibull,
)

ALL_DISTS = [
    Deterministic(5.0),
    Uniform(2.0, 8.0),
    Exponential(223.0),
    Erlang(3, 600.0),
    Lognormal(2213.0, 3034.0),
    Weibull(1.5, 100.0),
    Normal(50.0, 10.0),
    Pareto(3.0, 10.0),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
def test_sample_mean_matches_analytic(dist, rng):
    x = np.asarray(dist.sample(rng, 40_000), dtype=float)
    assert x.mean() == pytest.approx(dist.mean, rel=0.08)


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
def test_sample_scalar_and_vector_forms(dist, rng):
    scalar = dist.sample(rng)
    assert np.isscalar(scalar) or np.asarray(scalar).shape == ()
    vec = dist.sample(rng, 10)
    assert np.asarray(vec).shape == (10,)


@pytest.mark.parametrize(
    "dist",
    [Uniform(2, 8), Exponential(223), Lognormal(100, 50), Weibull(1.5, 100),
     Normal(50, 10), Pareto(3, 10), Erlang(3, 600)],
    ids=lambda d: type(d).__name__,
)
def test_ppf_inverts_cdf(dist):
    for q in (0.05, 0.25, 0.5, 0.75, 0.95):
        x = float(dist.ppf(q))
        assert float(dist.cdf(x)) == pytest.approx(q, abs=1e-6)


@pytest.mark.parametrize(
    "dist",
    [Uniform(2, 8), Exponential(223), Lognormal(100, 50), Weibull(1.5, 100),
     Normal(50, 10)],
    ids=lambda d: type(d).__name__,
)
def test_pdf_integrates_to_one(dist):
    lo = float(dist.ppf(1e-6))
    hi = float(dist.ppf(1.0 - 1e-6))
    x = np.linspace(lo, hi, 20_001)
    total = np.trapezoid(dist.pdf(x), x)
    assert total == pytest.approx(1.0, abs=2e-3)


class TestExponential:
    def test_parameterized_by_mean(self):
        d = Exponential(223.0)
        assert d.mean == 223.0
        assert d.rate == pytest.approx(1 / 223.0)
        assert d.var == pytest.approx(223.0**2)

    def test_memoryless_cdf(self):
        d = Exponential(10.0)
        assert float(d.cdf(10.0)) == pytest.approx(1 - math.exp(-1))

    def test_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            Exponential(0)


class TestLognormal:
    def test_moments_roundtrip(self):
        d = Lognormal(2213.0, 3034.0)
        assert d.mean == 2213.0
        assert d.std == 3034.0

    def test_from_log_params_roundtrip(self):
        d = Lognormal(500.0, 200.0)
        d2 = Lognormal.from_log_params(d.mu, d.sigma)
        assert d2.mean == pytest.approx(500.0)
        assert d2.std == pytest.approx(200.0)

    def test_pdf_zero_below_zero(self):
        d = Lognormal(10, 5)
        assert float(d.pdf(-1.0)) == 0.0
        assert float(d.cdf(0.0)) == 0.0

    def test_samples_positive(self, rng):
        d = Lognormal(2213, 3034)
        assert (d.sample(rng, 10_000) > 0).all()


class TestWeibull:
    def test_shape_one_is_exponential(self):
        w = Weibull(1.0, 100.0)
        e = Exponential(100.0)
        x = np.linspace(1, 500, 50)
        np.testing.assert_allclose(w.cdf(x), e.cdf(x), rtol=1e-9)

    def test_mean_formula(self):
        w = Weibull(2.0, 100.0)
        assert w.mean == pytest.approx(100.0 * math.gamma(1.5))


class TestDeterministic:
    def test_always_value(self, rng):
        d = Deterministic(7.0)
        assert d.sample(rng) == 7.0
        assert (np.asarray(d.sample(rng, 5)) == 7.0).all()
        assert d.var == 0.0

    def test_cdf_step(self):
        d = Deterministic(7.0)
        assert float(d.cdf(6.9)) == 0.0
        assert float(d.cdf(7.0)) == 1.0


class TestNormalTruncation:
    def test_truncated_samples_nonnegative(self, rng):
        d = Normal(1.0, 10.0, truncate=True)
        assert (np.asarray(d.sample(rng, 5000)) >= 0).all()

    def test_untruncated_allows_negative(self, rng):
        d = Normal(0.0, 10.0, truncate=False)
        assert (np.asarray(d.sample(rng, 5000)) < 0).any()


class TestEmpirical:
    def test_resamples_from_data(self, rng):
        data = [1.0, 2.0, 3.0]
        d = Empirical(data)
        out = set(np.asarray(d.sample(rng, 1000)))
        assert out <= set(data)

    def test_moments(self):
        d = Empirical([1.0, 2.0, 3.0, 4.0])
        assert d.mean == 2.5
        assert d.var == pytest.approx(np.var([1, 2, 3, 4], ddof=1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_cdf_is_ecdf(self):
        d = Empirical([1.0, 2.0, 3.0, 4.0])
        assert float(d.cdf(2.5)) == 0.5


class TestErlang:
    def test_variance(self):
        d = Erlang(4, 100.0)
        assert d.var == pytest.approx(100.0**2 / 4)

    def test_k_one_is_exponential(self, rng):
        d = Erlang(1, 100.0)
        e = Exponential(100.0)
        x = np.linspace(1, 500, 20)
        np.testing.assert_allclose(d.cdf(x), e.cdf(x), rtol=1e-9)


class TestPareto:
    def test_infinite_variance_below_two(self):
        assert math.isinf(Pareto(1.5, 10.0).var)
        assert math.isinf(Pareto(0.9, 10.0).mean)

    def test_support(self, rng):
        d = Pareto(3.0, 10.0)
        assert (np.asarray(d.sample(rng, 1000)) >= 10.0).all()


@given(
    mean=st.floats(min_value=1.0, max_value=1e5),
    cv=st.floats(min_value=0.05, max_value=3.0),
)
@settings(max_examples=60)
def test_lognormal_moment_parameterization_property(mean, cv):
    """Lognormal(mean, std) must reproduce the requested moments exactly."""
    d = Lognormal(mean, cv * mean)
    assert d.mean == pytest.approx(mean)
    assert d.std == pytest.approx(cv * mean)
    # Analytic check through the log-space parameters.
    assert math.exp(d.mu + d.sigma2 / 2) == pytest.approx(mean, rel=1e-9)


@given(st.floats(min_value=0.5, max_value=5), st.floats(min_value=1, max_value=1e4))
@settings(max_examples=40)
def test_weibull_ppf_cdf_property(shape, scale):
    d = Weibull(shape, scale)
    for q in (0.1, 0.5, 0.9):
        assert float(d.cdf(d.ppf(q))) == pytest.approx(q, abs=1e-9)


class TestSupportMin:
    """Lower support bound used for parallel-kernel lookahead."""

    def test_deterministic_is_its_value(self):
        assert Deterministic(42.0).support_min == 42.0

    def test_uniform_is_low(self):
        assert Uniform(5.0, 15.0).support_min == 5.0

    @pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
    def test_never_exceeds_samples(self, dist, rng):
        lo = dist.support_min
        assert lo >= 0.0
        assert np.all(dist.sample_block(rng, 500) >= lo)

    def test_unbounded_below_distributions_default_to_zero(self):
        assert Exponential(100.0).support_min == 0.0
        assert Lognormal(10.0, 4.0).support_min == 0.0
        assert Weibull(1.5, 100.0).support_min == 0.0
