"""Tests for the Anderson–Darling statistic."""

import numpy as np
import pytest

from repro.variates import (
    Exponential,
    Lognormal,
    anderson_darling,
    fit_exponential,
    fit_lognormal,
)


def test_good_fit_small_statistic(rng):
    data = rng.exponential(100.0, 3000)
    a2 = anderson_darling(data, Exponential(100.0))
    assert a2 < 3.0


def test_bad_fit_large_statistic(rng):
    data = rng.exponential(100.0, 3000)
    a2 = anderson_darling(data, Exponential(1000.0))
    assert a2 > 100.0


def test_ranks_correct_family_first(rng):
    data = Lognormal(2213.0, 3034.0).sample(rng, 3000)
    a2_ln = anderson_darling(data, fit_lognormal(data))
    a2_exp = anderson_darling(data, fit_exponential(data))
    assert a2_ln < a2_exp


def test_tail_sensitivity_vs_ks(rng):
    """Contaminating only the far tail inflates A-D relatively more
    than K-S (A-D's 1/[F(1-F)] weighting emphasizes the tails)."""
    from repro.variates import ks_statistic

    reference = Exponential(100.0)
    clean = rng.exponential(100.0, 5000)
    contaminated = np.concatenate([clean, rng.exponential(3000.0, 30)])
    ks_ratio = ks_statistic(contaminated, reference) / ks_statistic(
        clean, reference
    )
    ad_ratio = anderson_darling(contaminated, reference) / anderson_darling(
        clean, reference
    )
    assert ad_ratio > ks_ratio


def test_needs_two_points():
    with pytest.raises(ValueError):
        anderson_darling([1.0], Exponential(1.0))


def test_matches_scipy_for_normal(rng):
    """Cross-check against scipy's A-D implementation (normal case,
    which scipy parameterizes from the sample like our fitted dist)."""
    import warnings

    from scipy.stats import anderson as scipy_anderson

    from repro.variates import Normal

    data = rng.normal(10.0, 2.0, 500)
    with warnings.catch_warnings():
        # scipy >= 1.17 deprecates implicit p-value methods; only the
        # statistic is compared here.
        warnings.simplefilter("ignore", FutureWarning)
        scipy_stat = scipy_anderson(data, dist="norm").statistic
    # scipy fits internally with ddof... use the same MLE moments.
    ours = anderson_darling(
        data, Normal(float(np.mean(data)), float(np.std(data, ddof=1)))
    )
    assert ours == pytest.approx(scipy_stat, rel=0.05)
