"""Tests for goodness-of-fit diagnostics (K-S, chi-square, Q-Q, histograms)."""

import numpy as np
import pytest

from repro.variates import (
    Exponential,
    Lognormal,
    chi_square_test,
    fit_exponential,
    histogram_series,
    ks_statistic,
    ks_test,
    qq_series,
)


def test_ks_zero_for_perfect_quantile_data():
    d = Exponential(10.0)
    # Data placed at the exact plotting quantiles gives a small K-S.
    n = 1000
    data = d.ppf((np.arange(1, n + 1) - 0.5) / n)
    assert ks_statistic(data, d) < 0.01


def test_ks_detects_gross_mismatch(rng):
    data = rng.exponential(10.0, 2000)
    bad = Exponential(1000.0)
    good = fit_exponential(data)
    assert ks_statistic(data, bad) > 5 * ks_statistic(data, good)


def test_ks_test_pvalue_reasonable(rng):
    data = rng.exponential(10.0, 2000)
    _, p_good = ks_test(data, fit_exponential(data))
    _, p_bad = ks_test(data, Exponential(100.0))
    assert p_good > 0.01
    assert p_bad < 1e-6


def test_ks_empty_rejected():
    with pytest.raises(ValueError):
        ks_statistic([], Exponential(1.0))


def test_chi_square_accepts_good_fit(rng):
    data = rng.exponential(50.0, 5000)
    res = chi_square_test(data, fit_exponential(data), fitted_params=1)
    assert not res.rejected_at_05


def test_chi_square_rejects_bad_fit(rng):
    data = rng.exponential(50.0, 5000)
    res = chi_square_test(data, Exponential(10.0), fitted_params=1)
    assert res.rejected_at_05
    assert res.p_value < 1e-6


def test_chi_square_needs_data():
    with pytest.raises(ValueError):
        chi_square_test([1.0] * 5, Exponential(1.0))


def test_chi_square_dof_accounts_for_fitted_params(rng):
    data = rng.exponential(50.0, 2000)
    d = fit_exponential(data)
    res1 = chi_square_test(data, d, n_bins=20, fitted_params=1)
    res2 = chi_square_test(data, d, n_bins=20, fitted_params=2)
    assert res1.dof == res2.dof + 1


def test_qq_series_linear_for_true_distribution(rng):
    d = Lognormal(2213.0, 3034.0)
    data = d.sample(rng, 3000)
    qq = qq_series(data, d)
    assert qq.linearity() > 0.99
    assert len(qq.theoretical) == len(qq.observed) == 3000


def test_qq_series_tail_deviation_larger_for_wrong_family(rng):
    data = Lognormal(2213.0, 3034.0).sample(rng, 3000)
    right = qq_series(data, Lognormal(2213.0, 3034.0))
    wrong = qq_series(data, Exponential(float(np.mean(data))))
    assert wrong.max_tail_deviation() > right.max_tail_deviation()


def test_qq_observed_sorted(rng):
    data = rng.exponential(10.0, 100)
    qq = qq_series(data, Exponential(10.0))
    assert (np.diff(qq.observed) >= 0).all()


def test_qq_empty_rejected():
    with pytest.raises(ValueError):
        qq_series([], Exponential(1.0))


def test_histogram_series_structure(rng):
    data = rng.exponential(10.0, 2000)
    dists = {"exponential": Exponential(10.0), "lognormal": Lognormal(10.0, 10.0)}
    h = histogram_series(data, dists, n_bins=30, n_curve_points=100)
    assert len(h.frequencies) == 30
    assert len(h.edges) == 31
    assert set(h.pdf_curves) == {"exponential", "lognormal"}
    assert all(len(c) == 100 for c in h.pdf_curves.values())
    # Histogram is a density: integrates to ~1.
    widths = np.diff(h.edges)
    assert float(np.sum(h.frequencies * widths)) == pytest.approx(1.0, abs=1e-9)
