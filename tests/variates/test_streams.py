"""Tests for reproducible named random streams."""

import numpy as np
import pytest

from repro.variates import Exponential, Lognormal, StreamFactory, VariateStream


def test_same_seed_same_stream():
    a = StreamFactory(seed=7).generator("x").random(5)
    b = StreamFactory(seed=7).generator("x").random(5)
    np.testing.assert_array_equal(a, b)


def test_different_names_differ():
    f = StreamFactory(seed=7)
    a = f.generator("x").random(5)
    b = f.generator("y").random(5)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = StreamFactory(seed=1).generator("x").random(5)
    b = StreamFactory(seed=2).generator("x").random(5)
    assert not np.array_equal(a, b)


def test_replications_are_independent():
    a = StreamFactory(seed=1, replication=0).generator("x").random(5)
    b = StreamFactory(seed=1, replication=1).generator("x").random(5)
    assert not np.array_equal(a, b)


def test_creation_order_does_not_matter():
    f1 = StreamFactory(seed=3)
    f1.generator("a")
    x1 = f1.generator("b").random(3)
    f2 = StreamFactory(seed=3)
    x2 = f2.generator("b").random(3)
    np.testing.assert_array_equal(x1, x2)


def test_generator_cached():
    f = StreamFactory(seed=0)
    assert f.generator("x") is f.generator("x")


def test_child_streams_are_prefixed():
    f = StreamFactory(seed=5)
    child = f.child("node0")
    a = child.generator("cpu").random(4)
    b = f.generator("node0/cpu").random(4)
    np.testing.assert_array_equal(a, b)


def test_variate_stream_serves_scalars():
    f = StreamFactory(seed=9)
    vs = f.variates("app/cpu", Exponential(100.0), block=16)
    values = [vs() for _ in range(50)]
    assert all(isinstance(v, float) for v in values)
    assert all(v >= 0 for v in values)


def test_variate_stream_reproducible():
    d = Lognormal(100, 30)
    a = [StreamFactory(seed=4).variates("s", d)() for _ in range(1)]
    b = [StreamFactory(seed=4).variates("s", d)() for _ in range(1)]
    assert a == b


def test_variate_stream_block_boundary():
    f = StreamFactory(seed=2)
    vs = f.variates("s", Exponential(10.0), block=4)
    first = [vs() for _ in range(9)]  # crosses two block refills
    # Same draws as the raw generator would produce in blocks of 4.
    gen = StreamFactory(seed=2).generator("s")
    raw = np.concatenate([gen.exponential(10.0, 4) for _ in range(3)])[:9]
    np.testing.assert_allclose(first, raw)


def test_variate_stream_draw_array():
    f = StreamFactory(seed=2)
    vs = f.variates("s", Exponential(10.0))
    arr = vs.draw(7)
    assert arr.shape == (7,)


def test_variate_stream_stats(rng):
    vs = VariateStream(Exponential(50.0), rng, block=256)
    xs = [vs() for _ in range(20_000)]
    assert np.mean(xs) == pytest.approx(50.0, rel=0.05)


def test_bad_block_rejected(rng):
    with pytest.raises(ValueError):
        VariateStream(Exponential(1.0), rng, block=0)
