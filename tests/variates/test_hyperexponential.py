"""Tests for the hyperexponential distribution."""

import numpy as np
import pytest

from repro.variates import Exponential, Hyperexponential


def h2():
    return Hyperexponential(probs=[0.9, 0.1], means=[50.0, 2000.0])


def test_validation():
    with pytest.raises(ValueError):
        Hyperexponential(probs=[0.5], means=[1.0, 2.0])
    with pytest.raises(ValueError):
        Hyperexponential(probs=[0.6, 0.6], means=[1.0, 2.0])
    with pytest.raises(ValueError):
        Hyperexponential(probs=[0.5, 0.5], means=[1.0, -2.0])
    with pytest.raises(ValueError):
        Hyperexponential(probs=[], means=[])


def test_mean_is_mixture():
    d = h2()
    assert d.mean == pytest.approx(0.9 * 50 + 0.1 * 2000)


def test_cv_at_least_one():
    assert h2().cv > 1.0
    balanced = Hyperexponential(probs=[0.5, 0.5], means=[10.0, 10.0])
    assert balanced.cv == pytest.approx(1.0)


def test_degenerates_to_exponential():
    d = Hyperexponential(probs=[1.0], means=[100.0])
    e = Exponential(100.0)
    x = np.linspace(1, 500, 20)
    np.testing.assert_allclose(d.cdf(x), e.cdf(x), rtol=1e-12)
    np.testing.assert_allclose(d.pdf(x), e.pdf(x), rtol=1e-12)


def test_sample_moments(rng):
    d = h2()
    x = d.sample(rng, 100_000)
    assert np.mean(x) == pytest.approx(d.mean, rel=0.05)
    assert np.std(x) == pytest.approx(d.std, rel=0.08)


def test_scalar_sampling(rng):
    v = h2().sample(rng)
    assert isinstance(v, float) and v >= 0


def test_cdf_monotone_and_bounded():
    d = h2()
    x = np.linspace(0, 20_000, 200)
    c = d.cdf(x)
    assert (np.diff(c) >= 0).all()
    assert 0 <= c[0] and c[-1] <= 1


def test_ppf_inverts_cdf():
    d = h2()
    for q in (0.05, 0.5, 0.9, 0.99):
        x = d.ppf(q)
        assert float(d.cdf(x)) == pytest.approx(q, abs=1e-6)


def test_ppf_vectorized():
    d = h2()
    qs = np.array([0.1, 0.5, 0.9])
    xs = np.asarray(d.ppf(qs))
    assert xs.shape == (3,)
    assert (np.diff(xs) > 0).all()


def test_pdf_integrates_to_one():
    d = h2()
    x = np.linspace(0, float(d.ppf(1 - 1e-7)), 200_001)
    assert float(np.trapezoid(d.pdf(x), x)) == pytest.approx(1.0, abs=2e-3)


def test_usable_as_rocc_workload(rng):
    """A high-CV network-request distribution plugs straight into the
    simulator (workload sensitivity beyond Table 2's families)."""
    from repro.rocc import SimulationConfig, simulate
    from repro.workload import WorkloadParameters

    wl = WorkloadParameters(app_network=h2())
    r = simulate(
        SimulationConfig(nodes=1, duration=1_000_000.0, workload=wl, seed=5)
    )
    assert r.app_cycles > 0
