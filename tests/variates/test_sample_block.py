"""``Distribution.sample_block``: the hot block-refill path (S3).

The contract is that drawing a block consumes exactly the same
generator state as the equivalent ``sample(rng, n)`` call, so
block-buffered streams and naive per-call sampling produce identical
variate sequences.
"""

import numpy as np
import pytest

from repro.variates import (
    Deterministic,
    Empirical,
    Exponential,
    Hyperexponential,
    Lognormal,
    Normal,
    Pareto,
    Uniform,
    VariateStream,
    Weibull,
)

DISTS = [
    Deterministic(4.2),
    Uniform(1.0, 3.0),
    Exponential(100.0),
    Lognormal(267.0, 355.0),
    Weibull(1.2, 100.0),
    Normal(50.0, 10.0),
    Hyperexponential([0.3, 0.7], [10.0, 200.0]),
    Pareto(2.5, 1.0),
    Empirical([1.0, 2.0, 5.0, 9.0]),
]


@pytest.mark.parametrize("dist", DISTS, ids=lambda d: type(d).__name__)
def test_block_matches_vector_sample(dist):
    block = dist.sample_block(np.random.default_rng(7), 64)
    vector = np.asarray(dist.sample(np.random.default_rng(7), 64), dtype=float)
    assert block.dtype == np.float64
    assert block.shape == (64,)
    np.testing.assert_array_equal(block, vector)


@pytest.mark.parametrize("dist", DISTS, ids=lambda d: type(d).__name__)
def test_stream_serves_block_values_in_order(dist):
    stream = VariateStream(dist, np.random.default_rng(3), block=16)
    served = [stream() for _ in range(40)]  # crosses two refills
    rng = np.random.default_rng(3)
    expected = list(dist.sample_block(rng, 16)) + list(
        dist.sample_block(rng, 16)
    ) + list(dist.sample_block(rng, 16))[:8]
    assert served == expected


def test_deterministic_block_is_constant_and_skips_rng():
    rng = np.random.default_rng(0)
    state_before = rng.bit_generator.state["state"]["state"]
    block = Deterministic(7.0).sample_block(rng, 32)
    assert rng.bit_generator.state["state"]["state"] == state_before
    np.testing.assert_array_equal(block, np.full(32, 7.0))


def test_uniform_block_stays_in_bounds():
    block = Uniform(2.0, 3.0).sample_block(np.random.default_rng(1), 1000)
    assert block.min() >= 2.0
    assert block.max() <= 3.0


def test_draw_uses_block_path():
    dist = Exponential(10.0)
    stream = VariateStream(dist, np.random.default_rng(5), block=8)
    got = stream.draw(12)
    expected = dist.sample_block(np.random.default_rng(5), 12)
    np.testing.assert_array_equal(got, expected)
