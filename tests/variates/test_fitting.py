"""Tests for MLE distribution fitting (Law & Kelton estimators)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.variates import (
    Exponential,
    Lognormal,
    Weibull,
    fit_best,
    fit_exponential,
    fit_lognormal,
    fit_normal,
    fit_weibull,
)


def test_fit_exponential_is_sample_mean(rng):
    data = rng.exponential(223.0, 5000)
    fit = fit_exponential(data)
    assert fit.mean == pytest.approx(float(np.mean(data[data > 0])))


def test_fit_lognormal_recovers_parameters(rng):
    true = Lognormal(2213.0, 3034.0)
    data = true.sample(rng, 30_000)
    fit = fit_lognormal(data)
    assert fit.mean == pytest.approx(2213.0, rel=0.08)
    assert fit.std == pytest.approx(3034.0, rel=0.15)


def test_fit_weibull_recovers_parameters(rng):
    true = Weibull(1.7, 120.0)
    data = true.sample(rng, 20_000)
    fit = fit_weibull(data)
    assert fit.shape == pytest.approx(1.7, rel=0.05)
    assert fit.scale == pytest.approx(120.0, rel=0.05)


def test_fit_weibull_exponential_data_shape_near_one(rng):
    data = rng.exponential(100.0, 20_000)
    fit = fit_weibull(data)
    assert fit.shape == pytest.approx(1.0, rel=0.05)


def test_fit_normal(rng):
    data = rng.normal(50.0, 10.0, 10_000)
    fit = fit_normal(data)
    assert fit.mean == pytest.approx(50.0, rel=0.05)
    assert fit.std == pytest.approx(10.0, rel=0.1)


def test_fit_best_picks_lognormal_for_lognormal_data(rng):
    data = Lognormal(2213.0, 3034.0).sample(rng, 8000)
    best, results = fit_best(data)
    assert best.family == "lognormal"
    assert len(results) == 3


def test_fit_best_ks_criterion(rng):
    data = rng.exponential(100.0, 5000)
    best, _ = fit_best(data, criterion="ks")
    # Weibull nests exponential so either may win narrowly, but the
    # chosen fit must describe the data (mean close).
    assert best.distribution.mean == pytest.approx(100.0, rel=0.1)


def test_fit_best_unknown_family_rejected(rng):
    with pytest.raises(ValueError):
        fit_best(rng.exponential(1.0, 100), families=["cauchy"])


def test_fit_best_unknown_criterion_rejected(rng):
    with pytest.raises(ValueError):
        fit_best(rng.exponential(1.0, 100), criterion="aicc")


def test_empty_data_rejected():
    with pytest.raises(ValueError):
        fit_exponential([])
    with pytest.raises(ValueError):
        fit_lognormal([0.0, -1.0])


def test_loglik_ordering_consistent(rng):
    """The chosen family's log-likelihood must be the maximum reported."""
    data = Lognormal(100.0, 80.0).sample(rng, 4000)
    best, results = fit_best(data)
    assert best.loglik == max(r.loglik for r in results)


def test_fit_result_contains_ks(rng):
    data = rng.exponential(10.0, 1000)
    _, results = fit_best(data)
    for r in results:
        assert 0 <= r.ks_statistic <= 1


@given(
    mean=st.floats(min_value=10.0, max_value=1e4),
    n=st.integers(min_value=200, max_value=2000),
)
@settings(max_examples=20, deadline=None)
def test_exponential_fit_roundtrip_property(mean, n):
    rng = np.random.default_rng(17)
    data = rng.exponential(mean, n)
    fit = fit_exponential(data)
    # MLE of an exponential is unbiased: within 5 SEs of the truth.
    se = mean / np.sqrt(n)
    assert abs(fit.mean - mean) < 5 * se + 1e-9


def test_degenerate_near_constant_data_weibull():
    data = np.full(100, 42.0) + np.linspace(0, 1e-6, 100)
    fit = fit_weibull(data)
    assert fit.scale == pytest.approx(42.0, rel=0.01)
