"""Tests for antithetic variate streams."""

import numpy as np
import pytest

from repro.variates import AntitheticStream, Exponential, Lognormal, StreamFactory


def paired_streams(dist, seed=5, block=256):
    a = AntitheticStream(
        dist, StreamFactory(seed=seed).generator("s"), antithetic=False,
        block=block,
    )
    b = AntitheticStream(
        dist, StreamFactory(seed=seed).generator("s"), antithetic=True,
        block=block,
    )
    return a, b


def test_block_validation(rng):
    with pytest.raises(ValueError):
        AntitheticStream(Exponential(1.0), rng, block=0)


def test_marginal_distribution_correct(rng):
    stream = AntitheticStream(Exponential(100.0), rng, block=512)
    xs = np.array([stream() for _ in range(20_000)])
    assert xs.mean() == pytest.approx(100.0, rel=0.05)
    assert xs.std() == pytest.approx(100.0, rel=0.05)


def test_pairs_negatively_correlated():
    a, b = paired_streams(Exponential(50.0))
    xa = np.array([a() for _ in range(5000)])
    xb = np.array([b() for _ in range(5000)])
    corr = np.corrcoef(xa, xb)[0, 1]
    assert corr < -0.5  # exponential antithetic pairs: corr ≈ -0.645


def test_pair_average_has_lower_variance_than_iid():
    a, b = paired_streams(Lognormal(100.0, 60.0))
    pair_means = np.array([(a() + b()) / 2 for _ in range(5000)])
    rng = np.random.default_rng(5)
    iid = Lognormal(100.0, 60.0).sample(rng, 10_000).reshape(5000, 2).mean(axis=1)
    assert pair_means.var() < 0.6 * iid.var()
    # The estimator stays unbiased.
    assert pair_means.mean() == pytest.approx(100.0, rel=0.03)


def test_antithetic_of_antithetic_recovers_original():
    a1, _ = paired_streams(Exponential(10.0), seed=9)
    a2, _ = paired_streams(Exponential(10.0), seed=9)
    assert [a1() for _ in range(10)] == [a2() for _ in range(10)]
