"""Legacy setup shim.

The offline environment this project targets ships setuptools 65 without
the ``wheel`` package, so PEP 517 editable installs fail; this shim keeps
``pip install -e .`` working there.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
